//! Maximum-independent-set computation on embedding collision graphs
//! (§3.4 of the paper).
//!
//! Overlapping embeddings cannot all be outlined — extracting one destroys
//! the instructions the other needs (Fig. 8). The *collision graph* has
//! one node per embedding and an edge between every two embeddings that
//! share an instruction; the number of outlinable occurrences is the size
//! of a maximum independent set.
//!
//! Everything here is word-parallel: node sets arrive as [`NodeSet`]
//! bitsets (collision = `AND` + early exit), the graph is stored as
//! bitset adjacency rows ([`CollisionGraph`]), and the exact solver is a
//! branch-and-bound in the spirit of Kumlander's vertex-colouring
//! max-clique algorithm over `u128` candidate sets (we bound with a
//! greedy clique-cover of the candidate set, the complement view of his
//! colouring bound). Components of up to 128 vertices are solved exactly
//! — twice the pre-bitset width — with a greedy minimum-degree fallback
//! beyond (such components do not occur in the benchmark corpus).

use gpa_trace::{NoopTracer, Tracer, Value};

use crate::nodeset::NodeSet;

/// A collision graph as bitset adjacency: one row of `words` 64-bit words
/// per vertex, bit `j` of row `i` set iff embeddings `i` and `j` collide.
#[derive(Clone, Debug)]
pub struct CollisionGraph {
    n: usize,
    words: usize,
    rows: Vec<u64>,
}

impl CollisionGraph {
    /// An edgeless graph on `n` vertices.
    pub fn new(n: usize) -> CollisionGraph {
        let words = n.div_ceil(64).max(1);
        CollisionGraph {
            n,
            words,
            rows: vec![0; n * words],
        }
    }

    /// Builds from classical adjacency lists (test and doc convenience).
    pub fn from_adj_lists(adj: &[Vec<usize>]) -> CollisionGraph {
        let mut g = CollisionGraph::new(adj.len());
        for (i, neighbors) in adj.iter().enumerate() {
            for &j in neighbors {
                g.add_edge(i, j);
            }
        }
        g
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the graph has no vertices.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Adds the undirected edge {a, b}.
    pub fn add_edge(&mut self, a: usize, b: usize) {
        self.rows[a * self.words + b / 64] |= 1 << (b % 64);
        self.rows[b * self.words + a / 64] |= 1 << (a % 64);
    }

    /// The adjacency row of `v`.
    pub fn row(&self, v: usize) -> &[u64] {
        &self.rows[v * self.words..(v + 1) * self.words]
    }

    /// Whether the edge {a, b} is present.
    pub fn has_edge(&self, a: usize, b: usize) -> bool {
        self.row(a)[b / 64] & (1 << (b % 64)) != 0
    }

    /// Degree of `v` (popcount of its row).
    pub fn degree(&self, v: usize) -> usize {
        self.row(v).iter().map(|w| w.count_ones() as usize).sum()
    }

    /// The neighbours of `v` in ascending order.
    pub fn neighbors(&self, v: usize) -> impl Iterator<Item = usize> + '_ {
        iter_bits(self.row(v))
    }
}

/// Ascending set-bit indices of a word slice.
fn iter_bits(words: &[u64]) -> impl Iterator<Item = usize> + '_ {
    words.iter().enumerate().flat_map(|(wi, &w)| {
        std::iter::successors(if w == 0 { None } else { Some(w) }, |&rest| {
            let rest = rest & (rest - 1);
            if rest == 0 {
                None
            } else {
                Some(rest)
            }
        })
        .map(move |rest| wi * 64 + rest.trailing_zeros() as usize)
    })
}

/// Builds the collision graph of a set of embeddings, given each
/// embedding's node set.
///
/// Two embeddings collide when their node sets intersect — a word-wise
/// `AND` with early exit per pair. Embeddings from different input graphs
/// never collide; callers typically partition by graph first.
pub fn collision_graph(node_sets: &[NodeSet]) -> CollisionGraph {
    let n = node_sets.len();
    let mut g = CollisionGraph::new(n);
    for i in 0..n {
        for j in (i + 1)..n {
            if node_sets[i].intersects(&node_sets[j]) {
                g.add_edge(i, j);
            }
        }
    }
    g
}

/// Whether two sorted slices share an element (the scalar reference
/// [`NodeSet::intersects`] is checked against in tests).
pub fn sorted_intersects(a: &[u32], b: &[u32]) -> bool {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => return true,
        }
    }
    false
}

/// Recursion-step budget for the exact solver; components exceeding it
/// fall back to the greedy answer found so far. Exhaustions are traced
/// as `mis.budget_exhausted` events.
const EXACT_BUDGET: u64 = 200_000;

/// Largest component solved exactly by the branch-and-bound (two words of
/// candidate-set bits).
const EXACT_COMPONENT_VERTICES: usize = 128;

/// Largest node-set count for which the frequency gate answers exactly
/// (via [`max_independent_set`] on the collision graph); beyond it the
/// gate is genuinely greedy and traced as `mis.support_greedy`.
const EXACT_SUPPORT_SETS: usize = 128;

/// Computes a maximum independent set of the collision graph, returning
/// the chosen vertex indices (exact for components of at most 128
/// vertices within a branch-and-bound budget, greedy beyond).
///
/// # Examples
///
/// ```
/// use gpa_mining::mis::CollisionGraph;
/// // A path a–b–c: the MIS is {a, c}.
/// let adj = CollisionGraph::from_adj_lists(&[vec![1], vec![0, 2], vec![1]]);
/// let mis = gpa_mining::mis::max_independent_set(&adj);
/// assert_eq!(mis.len(), 2);
/// assert!(mis.contains(&0) && mis.contains(&2));
/// ```
pub fn max_independent_set(adj: &CollisionGraph) -> Vec<usize> {
    max_independent_set_traced(adj, &NoopTracer)
}

/// [`max_independent_set`] with per-component telemetry: component
/// sizes, exact-vs-greedy path taken, branch-and-bound steps, budget
/// exhaustions and greedy-seed-kept events.
pub fn max_independent_set_traced(adj: &CollisionGraph, tracer: &dyn Tracer) -> Vec<usize> {
    let n = adj.len();
    let mut chosen = Vec::new();
    let mut seen = vec![false; n];
    // Split into connected components; solve each independently.
    for start in 0..n {
        if seen[start] {
            continue;
        }
        let mut component = Vec::new();
        let mut stack = vec![start];
        seen[start] = true;
        while let Some(v) = stack.pop() {
            component.push(v);
            for w in adj.neighbors(v) {
                if !seen[w] {
                    seen[w] = true;
                    stack.push(w);
                }
            }
        }
        tracer.count("mis.components", 1);
        if component.len() <= EXACT_COMPONENT_VERTICES {
            tracer.count("mis.component_exact", 1);
            chosen.extend(exact_mis_component(&component, adj, tracer));
        } else {
            // Silent no more: the greedy answer on an oversized component
            // can be arbitrarily far from the maximum.
            tracer.event(
                "mis.greedy_fallback",
                &[("component_size", Value::from(component.len()))],
            );
            chosen.extend(greedy_mis_component(&component, adj));
        }
    }
    chosen.sort_unstable();
    chosen
}

/// Whether at least `k` pairwise-disjoint node sets exist.
///
/// This is the frequency gate of the miner. Exact for `k <= 2` (all
/// pairs are tested — with the paper's minimum support of 2, "frequent"
/// means exactly "two disjoint embeddings exist") and for up to
/// [`EXACT_SUPPORT_SETS`] node sets (via the bounded exact MIS on the
/// collision graph); only beyond both is the answer the greedy lower
/// bound, and that genuinely-greedy remainder is traced.
///
/// Exactness matters beyond `k = 2`: the greedy count can undershoot
/// the true maximum, and a pattern wrongly reported infrequent has its
/// whole lattice subtree pruned (the antimonotone gate must never
/// under-approximate).
pub fn has_k_disjoint(node_sets: &[NodeSet], k: usize) -> bool {
    has_k_disjoint_traced(node_sets, k, &NoopTracer)
}

/// [`has_k_disjoint`] with telemetry on which gate path answered.
pub fn has_k_disjoint_traced(node_sets: &[NodeSet], k: usize, tracer: &dyn Tracer) -> bool {
    if k == 0 {
        return true;
    }
    if k == 1 {
        return !node_sets.is_empty();
    }
    if k == 2 {
        tracer.count("mis.support_exact_pairs", 1);
        for i in 0..node_sets.len() {
            for j in (i + 1)..node_sets.len() {
                if !node_sets[i].intersects(&node_sets[j]) {
                    return true;
                }
            }
        }
        return false;
    }
    // The greedy count is a sound lower bound: reaching `k` proves the
    // disjoint sets exist. Failing to reach `k` proves nothing.
    if greedy_disjoint_count(node_sets) >= k {
        return true;
    }
    if node_sets.len() <= EXACT_SUPPORT_SETS {
        tracer.count("mis.support_exact", 1);
        let adj = collision_graph(node_sets);
        return max_independent_set_traced(&adj, tracer).len() >= k;
    }
    tracer.event(
        "mis.support_greedy",
        &[
            ("sets", Value::from(node_sets.len())),
            ("k", Value::from(k)),
        ],
    );
    false
}

/// Best-effort maximum number of pairwise-disjoint node sets: exact for
/// up to [`EXACT_SUPPORT_SETS`] sets (within the branch-and-bound
/// budget), the greedy lower bound beyond (traced).
pub fn disjoint_count_traced(node_sets: &[NodeSet], tracer: &dyn Tracer) -> usize {
    let greedy = greedy_disjoint_count(node_sets);
    if node_sets.len() <= greedy.max(1) {
        // 0 or 1 sets, or greedy already took everything: exact.
        return greedy;
    }
    if node_sets.len() <= EXACT_SUPPORT_SETS {
        tracer.count("mis.support_exact", 1);
        let adj = collision_graph(node_sets);
        return max_independent_set_traced(&adj, tracer).len().max(greedy);
    }
    tracer.event(
        "mis.support_greedy",
        &[
            ("sets", Value::from(node_sets.len())),
            ("k", Value::Int(-1)),
        ],
    );
    greedy
}

/// Greedy lower bound on the number of pairwise-disjoint node sets
/// (shortest sets first — short embeddings block fewer others).
pub fn greedy_disjoint_count(node_sets: &[NodeSet]) -> usize {
    let mut order: Vec<usize> = (0..node_sets.len()).collect();
    order.sort_by_key(|&i| node_sets[i].len());
    let mut chosen: Vec<&NodeSet> = Vec::new();
    for i in order {
        if chosen.iter().all(|c| !c.intersects(&node_sets[i])) {
            chosen.push(&node_sets[i]);
        }
    }
    chosen.len()
}

/// Exact branch-and-bound MIS on one component (≤ 128 vertices) using
/// `u128` candidate sets and a greedy clique-cover bound.
fn exact_mis_component(
    component: &[usize],
    adj: &CollisionGraph,
    tracer: &dyn Tracer,
) -> Vec<usize> {
    let n = component.len();
    // Global vertex index → local bit position.
    let mut local = vec![u32::MAX; adj.len()];
    for (i, &v) in component.iter().enumerate() {
        local[v] = i as u32;
    }
    // Local adjacency bitmasks.
    let mut nbr = vec![0u128; n];
    for (i, &v) in component.iter().enumerate() {
        for w in adj.neighbors(v) {
            debug_assert!(local[w] != u32::MAX, "component adjacency is closed");
            nbr[i] |= 1 << local[w];
        }
    }
    let full: u128 = if n == 128 { !0 } else { (1u128 << n) - 1 };
    let mut best_set = 0u128;
    let mut best;

    // Greedy clique cover of the candidate set: the number of cliques
    // needed is an upper bound on the independent set inside it.
    let clique_cover_bound = |mut p: u128, nbr: &[u128]| -> u32 {
        let mut cliques = 0u32;
        while p != 0 {
            cliques += 1;
            // Grow one clique greedily.
            let mut candidates = p;
            let mut clique = 0u128;
            while candidates != 0 {
                let v = candidates.trailing_zeros() as usize;
                clique |= 1 << v;
                candidates &= nbr[v];
            }
            p &= !clique;
        }
        cliques
    };

    #[allow(clippy::too_many_arguments)]
    fn recurse(
        p: u128,
        current: u128,
        size: u32,
        nbr: &[u128],
        best: &mut u32,
        best_set: &mut u128,
        bound: &dyn Fn(u128, &[u128]) -> u32,
        budget: &mut u64,
    ) {
        if *budget == 0 {
            return; // Out of budget: keep the best found so far.
        }
        *budget -= 1;
        if p == 0 {
            if size > *best {
                *best = size;
                *best_set = current;
            }
            return;
        }
        if size + bound(p, nbr) <= *best {
            return;
        }
        // Branch on the candidate with most neighbours inside `p`.
        let mut pick = p.trailing_zeros() as usize;
        let mut max_deg = 0u32;
        let mut it = p;
        while it != 0 {
            let v = it.trailing_zeros() as usize;
            it &= it - 1;
            let deg = (nbr[v] & p).count_ones();
            if deg > max_deg {
                max_deg = deg;
                pick = v;
            }
        }
        // Include pick.
        recurse(
            p & !nbr[pick] & !(1 << pick),
            current | (1 << pick),
            size + 1,
            nbr,
            best,
            best_set,
            bound,
            budget,
        );
        // Exclude pick.
        recurse(
            p & !(1 << pick),
            current,
            size,
            nbr,
            best,
            best_set,
            bound,
            budget,
        );
    }

    // Seed with the greedy answer so a budget exhaustion still returns a
    // decent set.
    let greedy_size;
    {
        let greedy = greedy_mis_component(component, adj);
        greedy_size = greedy.len() as u32;
        best = greedy_size;
        for v in greedy {
            best_set |= 1 << local[v];
        }
    }
    let mut budget = EXACT_BUDGET;
    recurse(
        full,
        0,
        0,
        &nbr,
        &mut best,
        &mut best_set,
        &|p, nbr| clique_cover_bound(p, nbr),
        &mut budget,
    );
    tracer.count("mis.bb_steps", EXACT_BUDGET - budget);
    if budget == 0 {
        // The search was cut off: the answer is only a lower bound. When
        // branch-and-bound never improved on the greedy seed, the whole
        // exact budget bought nothing — the paper-visible quality of
        // this component is exactly the greedy heuristic's.
        tracer.event(
            "mis.budget_exhausted",
            &[
                ("component_size", Value::from(n)),
                ("best", Value::from(u64::from(best))),
                ("improved_on_greedy", Value::from(best > greedy_size)),
            ],
        );
        if best == greedy_size {
            tracer.event(
                "mis.greedy_seed_kept",
                &[("component_size", Value::from(n))],
            );
        }
    }
    (0..n)
        .filter(|&i| best_set & (1 << i) != 0)
        .map(|i| component[i])
        .collect()
}

/// Greedy minimum-degree independent set (fallback for huge components,
/// and the seed of the exact search). Removing a chosen vertex's
/// neighbourhood is one word-wise `AND NOT` over the alive mask.
fn greedy_mis_component(component: &[usize], adj: &CollisionGraph) -> Vec<usize> {
    let words = adj.len().div_ceil(64).max(1);
    let mut alive = vec![0u64; words];
    for &v in component {
        alive[v / 64] |= 1 << (v % 64);
    }
    let mut result = Vec::new();
    let mut order: Vec<usize> = component.to_vec();
    order.sort_by_key(|&v| adj.degree(v));
    for v in order {
        if alive[v / 64] & (1 << (v % 64)) == 0 {
            continue;
        }
        result.push(v);
        alive[v / 64] &= !(1 << (v % 64));
        for (wi, w) in adj.row(v).iter().enumerate() {
            alive[wi] &= !w;
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph_from_edges(n: usize, edges: &[(usize, usize)]) -> CollisionGraph {
        let mut adj = CollisionGraph::new(n);
        for &(a, b) in edges {
            adj.add_edge(a, b);
        }
        adj
    }

    /// Node set from a slice.
    fn ns(ids: &[u32]) -> NodeSet {
        NodeSet::from(ids)
    }

    /// Brute-force MIS size for cross-checking.
    fn brute_force_mis(adj: &CollisionGraph) -> usize {
        let n = adj.len();
        assert!(n <= 20);
        let mut best = 0;
        for mask in 0u32..(1 << n) {
            let ok = (0..n)
                .all(|v| mask & (1 << v) == 0 || adj.neighbors(v).all(|w| mask & (1 << w) == 0));
            if ok {
                best = best.max(mask.count_ones() as usize);
            }
        }
        best
    }

    fn is_independent(set: &[usize], adj: &CollisionGraph) -> bool {
        set.iter()
            .all(|&v| adj.neighbors(v).all(|w| !set.contains(&w)))
    }

    #[test]
    fn empty_and_singleton() {
        assert!(max_independent_set(&CollisionGraph::new(0)).is_empty());
        assert_eq!(max_independent_set(&CollisionGraph::new(1)), vec![0]);
    }

    #[test]
    fn adjacency_rows_and_degrees() {
        let adj = graph_from_edges(70, &[(0, 1), (0, 69), (68, 69)]);
        assert!(adj.has_edge(0, 1) && adj.has_edge(1, 0));
        assert!(adj.has_edge(69, 0) && !adj.has_edge(2, 3));
        assert_eq!(adj.degree(0), 2);
        assert_eq!(adj.neighbors(0).collect::<Vec<_>>(), vec![1, 69]);
        assert_eq!(adj.neighbors(69).collect::<Vec<_>>(), vec![0, 68]);
        let from_lists = CollisionGraph::from_adj_lists(&[vec![1], vec![0], vec![]]);
        assert!(from_lists.has_edge(0, 1) && !from_lists.has_edge(1, 2));
    }

    #[test]
    fn small_known_graphs() {
        // Triangle: MIS = 1.
        let tri = graph_from_edges(3, &[(0, 1), (1, 2), (0, 2)]);
        assert_eq!(max_independent_set(&tri).len(), 1);
        // 5-cycle: MIS = 2.
        let c5 = graph_from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        assert_eq!(max_independent_set(&c5).len(), 2);
        // Star: MIS = leaves.
        let star = graph_from_edges(6, &[(0, 1), (0, 2), (0, 3), (0, 4), (0, 5)]);
        assert_eq!(max_independent_set(&star).len(), 5);
    }

    #[test]
    fn matches_brute_force_on_random_graphs() {
        // Deterministic xorshift for reproducibility.
        let mut state = 0x12345678u64;
        let mut rand = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for n in [6usize, 10, 14] {
            for _ in 0..30 {
                let mut edges = Vec::new();
                for i in 0..n {
                    for j in (i + 1)..n {
                        if rand() % 100 < 30 {
                            edges.push((i, j));
                        }
                    }
                }
                let adj = graph_from_edges(n, &edges);
                let mis = max_independent_set(&adj);
                assert!(is_independent(&mis, &adj));
                assert_eq!(mis.len(), brute_force_mis(&adj), "n={n}, edges={edges:?}");
            }
        }
    }

    #[test]
    fn collision_graph_from_node_sets() {
        let sets = vec![ns(&[0, 1, 2]), ns(&[2, 3]), ns(&[4, 5]), ns(&[5, 6])];
        let adj = collision_graph(&sets);
        assert_eq!(adj.neighbors(0).collect::<Vec<_>>(), vec![1]);
        assert_eq!(adj.neighbors(2).collect::<Vec<_>>(), vec![3]);
        let mis = max_independent_set(&adj);
        assert_eq!(mis.len(), 2);
    }

    #[test]
    fn sorted_intersection() {
        assert!(sorted_intersects(&[1, 3, 5], &[5, 7]));
        assert!(!sorted_intersects(&[1, 3, 5], &[2, 4, 6]));
        assert!(!sorted_intersects(&[], &[1]));
        // The bitset kernel agrees with the scalar reference.
        assert!(ns(&[1, 3, 5]).intersects(&ns(&[5, 7])));
        assert!(!ns(&[1, 3, 5]).intersects(&ns(&[2, 4, 6])));
    }

    /// The adversarial 5-set gadget: greedy (input order on equal-length
    /// sets) picks the two "centre" sets and blocks the three-set
    /// optimum.
    fn gadget(base: u32) -> Vec<NodeSet> {
        vec![
            ns(&[base + 2, base + 3]), // greedy picks this first …
            ns(&[base + 4, base + 5]), // … and this, blocking the rest.
            ns(&[base + 1, base + 2]),
            ns(&[base + 3, base + 4]),
            ns(&[base + 5, base + 6]),
        ]
    }

    /// Regression for the `min_support > 2` antimonotone-gate violation:
    /// the pre-fix gate wrongly reported `k = 3` unreachable on the
    /// gadget.
    #[test]
    fn k_disjoint_beyond_two_is_exact_on_small_inputs() {
        let sets = gadget(0);
        assert!(
            greedy_disjoint_count(&sets) < 3,
            "the adversarial input must defeat the greedy heuristic"
        );
        // {1,2}, {3,4}, {5,6} are pairwise disjoint: the answer is yes.
        assert!(has_k_disjoint(&sets, 3));
        assert!(!has_k_disjoint(&sets, 4));
        assert_eq!(disjoint_count_traced(&sets, &NoopTracer), 3);
    }

    /// The exact gate straddles the old 64-set boundary: 95 gadget sets
    /// (19 disjoint universes × 5) have a known optimum of 57 that greedy
    /// undershoots. With the pre-widening `EXACT_SUPPORT_SETS = 64` the
    /// gate answered the greedy "no" here; the 128-set gate answers
    /// exactly.
    #[test]
    fn k_disjoint_straddles_the_old_64_set_boundary() {
        use gpa_trace::CounterTracer;
        let sets: Vec<NodeSet> = (0..19).flat_map(|rep| gadget(rep * 10)).collect();
        assert_eq!(sets.len(), 95);
        assert!(
            greedy_disjoint_count(&sets) < 57,
            "greedy must undershoot so the exact path is what answers"
        );
        let tracer = CounterTracer::new();
        assert!(has_k_disjoint_traced(&sets, 57, &tracer));
        assert_eq!(tracer.counters().get("mis.support_exact"), 1);
        assert_eq!(tracer.counters().get("mis.support_greedy"), 0);
        assert!(!has_k_disjoint(&sets, 58));
        assert_eq!(disjoint_count_traced(&sets, &NoopTracer), 57);
        // Past 128 sets the gate is genuinely greedy again (and traced).
        let big: Vec<NodeSet> = (0..26).flat_map(|rep| gadget(rep * 10)).collect();
        assert_eq!(big.len(), 130);
        let tracer = CounterTracer::new();
        assert!(!has_k_disjoint_traced(&big, 3 * 26, &tracer));
        assert_eq!(tracer.counters().get("mis.support_greedy"), 1);
    }

    #[test]
    fn k_disjoint_matches_brute_force_on_random_sets() {
        let mut state = 0x9e3779b9u64;
        let mut rand = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..50 {
            let n = 3 + (rand() % 10) as usize;
            let raw: Vec<Vec<u32>> = (0..n)
                .map(|_| {
                    let mut s: Vec<u32> =
                        (0..2 + rand() % 3).map(|_| (rand() % 12) as u32).collect();
                    s.sort_unstable();
                    s.dedup();
                    s
                })
                .collect();
            let sets: Vec<NodeSet> = raw.iter().map(|s| ns(s)).collect();
            // Brute-force maximum disjoint count over all subsets, via
            // the scalar reference intersection.
            let mut best = 0usize;
            for mask in 0u32..(1 << n) {
                let idx: Vec<usize> = (0..n).filter(|&i| mask & (1 << i) != 0).collect();
                let ok = idx.iter().enumerate().all(|(a, &i)| {
                    idx[a + 1..]
                        .iter()
                        .all(|&j| !sorted_intersects(&raw[i], &raw[j]))
                });
                if ok {
                    best = best.max(idx.len());
                }
            }
            assert_eq!(disjoint_count_traced(&sets, &NoopTracer), best, "{raw:?}");
            for k in 0..=n + 1 {
                assert_eq!(has_k_disjoint(&sets, k), best >= k, "k={k} {raw:?}");
            }
        }
    }

    /// A 70-leaf star was the old greedy-fallback witness; with the
    /// widened solver it is exact. The fallback now needs > 128 vertices.
    #[test]
    fn components_between_64_and_128_are_exact() {
        use gpa_trace::CounterTracer;
        let mut edges = Vec::new();
        for leaf in 1..71 {
            edges.push((0usize, leaf));
        }
        let adj = graph_from_edges(71, &edges);
        let tracer = CounterTracer::new();
        let mis = max_independent_set_traced(&adj, &tracer);
        assert_eq!(mis.len(), 70);
        let c = tracer.counters();
        assert_eq!(c.get("mis.component_exact"), 1);
        assert_eq!(c.get("mis.greedy_fallback"), 0);
        // An 80-vertex path: MIS is exactly 40, found by the u128 search.
        let path_edges: Vec<(usize, usize)> = (0..79).map(|i| (i, i + 1)).collect();
        let path = graph_from_edges(80, &path_edges);
        let tracer = CounterTracer::new();
        assert_eq!(max_independent_set_traced(&path, &tracer).len(), 40);
        assert_eq!(tracer.counters().get("mis.component_exact"), 1);
    }

    #[test]
    fn oversized_component_traces_greedy_fallback() {
        use gpa_trace::CounterTracer;
        // A star with 130 leaves is one 131-node component: greedy path.
        let mut edges = Vec::new();
        for leaf in 1..131 {
            edges.push((0usize, leaf));
        }
        let adj = graph_from_edges(131, &edges);
        let tracer = CounterTracer::new();
        let mis = max_independent_set_traced(&adj, &tracer);
        assert_eq!(mis.len(), 130);
        let c = tracer.counters();
        assert_eq!(c.get("mis.greedy_fallback"), 1);
        assert_eq!(c.get("mis.components"), 1);
        assert_eq!(c.get("mis.component_exact"), 0);
    }

    #[test]
    fn exact_component_counts_bb_steps() {
        use gpa_trace::CounterTracer;
        let c5 = graph_from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        let tracer = CounterTracer::new();
        assert_eq!(max_independent_set_traced(&c5, &tracer).len(), 2);
        let c = tracer.counters();
        assert_eq!(c.get("mis.component_exact"), 1);
        assert!(c.get("mis.bb_steps") > 0);
        assert_eq!(c.get("mis.budget_exhausted"), 0);
    }
}
