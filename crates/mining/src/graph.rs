//! The miner's input-graph representation.

use std::collections::HashMap;

use gpa_dfg::Dfg;

/// Interns string node labels into dense ids so the miner compares `u32`s.
#[derive(Clone, Debug, Default)]
pub struct LabelInterner {
    by_name: HashMap<String, u32>,
    names: Vec<String>,
}

impl LabelInterner {
    /// Creates an empty interner.
    pub fn new() -> LabelInterner {
        LabelInterner::default()
    }

    /// Interns a label, returning its id.
    pub fn intern(&mut self, label: &str) -> u32 {
        if let Some(&id) = self.by_name.get(label) {
            return id;
        }
        let id = self.names.len() as u32;
        self.by_name.insert(label.to_owned(), id);
        self.names.push(label.to_owned());
        id
    }

    /// The label text for an id.
    pub fn name(&self, id: u32) -> &str {
        &self.names[id as usize]
    }

    /// Number of distinct labels.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether no labels have been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

/// A directed edge of an input graph.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct GEdge {
    /// Source node.
    pub from: u32,
    /// Destination node.
    pub to: u32,
    /// Edge label (dependence-kind mask).
    pub label: u8,
}

/// One graph of the mining database: node labels plus directed labelled
/// edges, with adjacency lists in both directions.
#[derive(Clone, Debug)]
pub struct InputGraph {
    /// Interned node labels.
    pub labels: Vec<u32>,
    /// All edges.
    pub edges: Vec<GEdge>,
    /// Outgoing edge indices per node.
    pub out_edges: Vec<Vec<u32>>,
    /// Incoming edge indices per node.
    pub in_edges: Vec<Vec<u32>>,
}

impl InputGraph {
    /// Builds a graph from parallel node/edge lists.
    pub fn new(labels: Vec<u32>, edges: Vec<GEdge>) -> InputGraph {
        let n = labels.len();
        let mut out_edges = vec![Vec::new(); n];
        let mut in_edges = vec![Vec::new(); n];
        for (i, e) in edges.iter().enumerate() {
            out_edges[e.from as usize].push(i as u32);
            in_edges[e.to as usize].push(i as u32);
        }
        InputGraph {
            labels,
            edges,
            out_edges,
            in_edges,
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.labels.len()
    }

    /// Converts a batch of DFGs, sharing one label interner so equal
    /// instructions get equal ids across graphs.
    pub fn from_dfgs(dfgs: &[Dfg]) -> (Vec<InputGraph>, LabelInterner) {
        Self::from_dfg_refs(dfgs.iter())
    }

    /// [`InputGraph::from_dfgs`] over any iterator of DFG references —
    /// lets callers holding `Arc`-shared (e.g. cached) DFGs convert
    /// without cloning them into a contiguous slice.
    pub fn from_dfg_refs<'a, I>(dfgs: I) -> (Vec<InputGraph>, LabelInterner)
    where
        I: IntoIterator<Item = &'a Dfg>,
    {
        let mut interner = LabelInterner::new();
        let graphs = dfgs
            .into_iter()
            .map(|dfg| {
                let labels = (0..dfg.node_count())
                    .map(|i| interner.intern(dfg.label(i)))
                    .collect();
                let edges = dfg
                    .edges()
                    .iter()
                    .map(|e| GEdge {
                        from: e.from as u32,
                        to: e.to as u32,
                        label: e.kinds.0,
                    })
                    .collect();
                InputGraph::new(labels, edges)
            })
            .collect();
        (graphs, interner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interner_dedups() {
        let mut i = LabelInterner::new();
        let a = i.intern("add r1, r2, r3");
        let b = i.intern("sub r1, r2, r3");
        assert_ne!(a, b);
        assert_eq!(i.intern("add r1, r2, r3"), a);
        assert_eq!(i.name(b), "sub r1, r2, r3");
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn adjacency_lists() {
        let g = InputGraph::new(
            vec![0, 1, 2],
            vec![
                GEdge {
                    from: 0,
                    to: 1,
                    label: 1,
                },
                GEdge {
                    from: 0,
                    to: 2,
                    label: 1,
                },
                GEdge {
                    from: 1,
                    to: 2,
                    label: 2,
                },
            ],
        );
        assert_eq!(g.out_edges[0], vec![0, 1]);
        assert_eq!(g.in_edges[2], vec![1, 2]);
        assert!(g.in_edges[0].is_empty());
    }
}
