//! Frequent-subgraph mining for procedural abstraction: **DgSpan** and
//! **Edgar**.
//!
//! This crate implements the paper's §3 from scratch:
//!
//! * [`dfs_code`] — canonical DFS codes for *directed*, node- and
//!   edge-labelled graphs (gSpan's canonical form, Fig. 7, extended with
//!   an edge-direction flag);
//! * [`graph`] — the compact input-graph representation mined over
//!   (built from [`gpa_dfg::Dfg`]s);
//! * [`embed`] — embedding lists and rightmost-path extension;
//! * [`nodeset`] — the compact bitset node-set representation the hot
//!   paths (membership probes, collision detection, dedup keys) run on;
//! * [`mis`] — the maximum-independent-set solver used to count
//!   non-overlapping embeddings (§3.4; exact branch-and-bound with a
//!   greedy-colouring bound in the style of Kumlander's algorithm, with a
//!   greedy fallback for oversized components);
//! * [`miner`] — the search driver. With
//!   [`Support::Graphs`](miner::Support::Graphs) it behaves like
//!   **DgSpan** (count graphs containing the fragment); with
//!   [`Support::Embeddings`](miner::Support::Embeddings) it is **Edgar**
//!   (count non-overlapping embeddings via MIS).
//!
//! # Examples
//!
//! Mining the paper's running example finds the two three-instruction
//! fragments of Figs. 4 and 5:
//!
//! ```
//! use gpa_arm::parse::parse_listing;
//! use gpa_cfg::Item;
//! use gpa_dfg::{build_dfg_from_items, LabelMode};
//! use gpa_mining::graph::InputGraph;
//! use gpa_mining::miner::{mine, Config, Support};
//!
//! let items: Vec<Item> = parse_listing(
//!     "ldr r3, [r1]!\nsub r2, r2, r3\nadd r4, r2, #4\n\
//!      ldr r3, [r1]!\nsub r2, r2, r3\nldr r3, [r1]!\nadd r4, r2, #4",
//! )?
//! .into_iter()
//! .map(Item::Insn)
//! .collect();
//! let dfg = build_dfg_from_items("bb", 0, &items, LabelMode::Exact);
//! let (graphs, _interner) = InputGraph::from_dfgs(&[dfg]);
//! let found = mine(&graphs, &Config { min_support: 2, support: Support::Embeddings, ..Config::default() });
//! // Some frequent fragment with three nodes and two disjoint embeddings
//! // exists (Fig. 4 / Fig. 5).
//! assert!(found.iter().any(|f| f.pattern.node_count() == 3 && f.support == 2));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod dfs_code;
pub mod embed;
pub mod graph;
pub mod lattice;
pub mod miner;
pub mod mis;
pub mod nodeset;
