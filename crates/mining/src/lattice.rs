//! Search-lattice visualization (the paper's Fig. 6).
//!
//! Renders the first levels of the DFS-code search lattice explored by
//! the miner: each node is a pattern (shown by its instruction labels),
//! each edge a rightmost-path extension. Real lattices are enormous —
//! Fig. 6 itself shows "..." for the parts too big to print — so the
//! dump is depth- and width-limited.

use std::fmt::Write;

use gpa_trace::NoopTracer;

use crate::dfs_code::Pattern;
use crate::embed::{extensions, seed_buckets, Embedding};
use crate::graph::{InputGraph, LabelInterner};

/// Options for the lattice dump.
#[derive(Clone, Copy, Debug)]
pub struct LatticeOptions {
    /// Maximum pattern size (levels below the 1-edge seeds) to expand.
    pub max_nodes: usize,
    /// Maximum children printed per pattern (the rest become `...`).
    pub max_children: usize,
}

impl Default for LatticeOptions {
    fn default() -> LatticeOptions {
        LatticeOptions {
            max_nodes: 3,
            max_children: 4,
        }
    }
}

/// Renders the search lattice over `graphs` as an indented text tree.
///
/// Only canonical (minimal DFS code) patterns are shown — exactly the
/// nodes the miner visits; the pruned duplicate paths of Fig. 6 are what
/// the canonical-form test cuts away.
///
/// # Examples
///
/// ```
/// use gpa_arm::parse::parse_listing;
/// use gpa_cfg::Item;
/// use gpa_dfg::{build_dfg_from_items, LabelMode};
/// use gpa_mining::graph::InputGraph;
/// use gpa_mining::lattice::{render_lattice, LatticeOptions};
///
/// let items: Vec<Item> = parse_listing("ldr r3, [r1]!\nsub r2, r2, r3")?
///     .into_iter().map(Item::Insn).collect();
/// let dfg = build_dfg_from_items("bb", 0, &items, LabelMode::Exact);
/// let (graphs, interner) = InputGraph::from_dfgs(&[dfg]);
/// let text = render_lattice(&graphs, &interner, &LatticeOptions::default());
/// assert!(text.contains("ldr r3, [r1]!"));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn render_lattice(
    graphs: &[InputGraph],
    interner: &LabelInterner,
    options: &LatticeOptions,
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "*  (empty pattern)");
    for (tuple, embeddings) in seed_buckets(graphs) {
        let pattern = Pattern::root(tuple);
        if !pattern.is_min_cached(&NoopTracer) {
            continue;
        }
        render_node(
            &pattern,
            &embeddings,
            graphs,
            interner,
            options,
            1,
            &mut out,
        );
    }
    out
}

fn pattern_summary(pattern: &Pattern, interner: &LabelInterner) -> String {
    let labels: Vec<&str> = (0..pattern.node_count())
        .map(|i| interner.name(pattern.node_label(i)))
        .collect();
    format!(
        "[{}]  ({} nodes, {} edges)",
        labels.join(" | "),
        pattern.node_count(),
        pattern.edge_count()
    )
}

fn render_node(
    pattern: &Pattern,
    embeddings: &[Embedding],
    graphs: &[InputGraph],
    interner: &LabelInterner,
    options: &LatticeOptions,
    depth: usize,
    out: &mut String,
) {
    let indent = "  ".repeat(depth);
    let _ = writeln!(
        out,
        "{indent}{} x{}",
        pattern_summary(pattern, interner),
        embeddings.len()
    );
    if pattern.node_count() >= options.max_nodes {
        return;
    }
    let mut shown = 0usize;
    for (tuple, child_embeddings) in extensions(pattern, graphs, embeddings) {
        let child = pattern.extend(tuple);
        if !child.is_min_cached(&NoopTracer) {
            continue;
        }
        if shown >= options.max_children {
            let _ = writeln!(out, "{indent}  ...");
            break;
        }
        shown += 1;
        render_node(
            &child,
            &child_embeddings,
            graphs,
            interner,
            options,
            depth + 1,
            out,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpa_arm::parse::parse_listing;
    use gpa_cfg::Item;
    use gpa_dfg::{build_dfg_from_items, LabelMode};

    fn setup(asm: &str) -> (Vec<InputGraph>, LabelInterner) {
        let items: Vec<Item> = parse_listing(asm)
            .unwrap()
            .into_iter()
            .map(Item::Insn)
            .collect();
        let dfg = build_dfg_from_items("bb", 0, &items, LabelMode::Exact);
        InputGraph::from_dfgs(&[dfg])
    }

    #[test]
    fn renders_running_example_lattice() {
        let (graphs, interner) = setup(
            "ldr r3, [r1]!\n\
             sub r2, r2, r3\n\
             add r4, r2, #4\n\
             ldr r3, [r1]!\n\
             sub r2, r2, r3\n\
             ldr r3, [r1]!\n\
             add r4, r2, #4",
        );
        let text = render_lattice(&graphs, &interner, &LatticeOptions::default());
        assert!(text.starts_with("*"));
        assert!(text.contains("ldr r3, [r1]!"));
        assert!(text.contains("(2 nodes, 1 edges)"));
        assert!(text.contains("(3 nodes"), "expands to level 3:\n{text}");
        // With a width limit of 1, fan-outs are elided like the paper's
        // figure shows with "...".
        let narrow = render_lattice(
            &graphs,
            &interner,
            &LatticeOptions {
                max_nodes: 3,
                max_children: 1,
            },
        );
        assert!(narrow.contains("..."));
    }

    #[test]
    fn respects_depth_limit() {
        let (graphs, interner) = setup("ldr r3, [r1]!\nsub r2, r2, r3\nadd r4, r2, #4");
        let text = render_lattice(
            &graphs,
            &interner,
            &LatticeOptions {
                max_nodes: 2,
                max_children: 8,
            },
        );
        assert!(!text.contains("(3 nodes"));
    }

    #[test]
    fn empty_database() {
        let interner = LabelInterner::new();
        let text = render_lattice(&[], &interner, &LatticeOptions::default());
        assert_eq!(text.trim(), "*  (empty pattern)");
    }
}
