//! Embedding lists and rightmost-path extension.
//!
//! Unlike classical gSpan, which re-runs subgraph isomorphism to count
//! support, this engine carries every embedding along the search (the
//! style of MoFa/Gaston): extensions are enumerated by scanning the
//! embeddings, which is what makes Edgar's occurrence counting possible.

use std::collections::{BTreeMap, HashMap};

use crate::dfs_code::{DfsTuple, Pattern};
use crate::graph::InputGraph;
use crate::nodeset::NodeSet;

/// One occurrence of a pattern in an input graph: `map[dfs_index]` is the
/// graph node playing that pattern role.
///
/// Alongside the role-ordered `map`, every embedding carries its node set
/// as a [`NodeSet`] bitset, kept in sync by construction: membership
/// tests are a bit probe, overlap tests a word-wise `AND`, and the
/// node-set views ([`sorted_nodes`](Embedding::sorted_nodes),
/// [`node_set`](Embedding::node_set)) cost no sort.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Embedding {
    /// Index of the graph within the database.
    pub graph: u32,
    /// DFS index → graph node.
    pub map: Vec<u32>,
    nodes: NodeSet,
}

impl Embedding {
    /// Creates an embedding from its graph index and role map.
    pub fn new(graph: u32, map: Vec<u32>) -> Embedding {
        let nodes = map.iter().copied().collect();
        Embedding { graph, map, nodes }
    }

    /// Whether the graph node is already used by this embedding.
    pub fn contains(&self, node: u32) -> bool {
        self.nodes.contains(node)
    }

    /// The embedding's node set as a bitset.
    pub fn node_set(&self) -> &NodeSet {
        &self.nodes
    }

    /// The node set as a sorted vector (embeddings never repeat a node,
    /// so the set view is lossless).
    pub fn sorted_nodes(&self) -> Vec<u32> {
        self.nodes.to_sorted_vec()
    }

    /// The embedding extended by one more graph node in the next role.
    fn extended(&self, node: u32) -> Embedding {
        let mut map = Vec::with_capacity(self.map.len() + 1);
        map.extend_from_slice(&self.map);
        map.push(node);
        let mut nodes = self.nodes.clone();
        nodes.insert(node);
        Embedding {
            graph: self.graph,
            map,
            nodes,
        }
    }
}

/// Enumerates all single-edge patterns with their embeddings, keyed and
/// sorted by tuple.
pub fn seed_buckets(graphs: &[InputGraph]) -> BTreeMap<DfsTuple, Vec<Embedding>> {
    let mut buckets: BTreeMap<DfsTuple, Vec<Embedding>> = BTreeMap::new();
    for (gi, g) in graphs.iter().enumerate() {
        for e in &g.edges {
            let lf = g.labels[e.from as usize];
            let lt = g.labels[e.to as usize];
            // Start the DFS at either endpoint.
            buckets
                .entry(DfsTuple {
                    from: 0,
                    to: 1,
                    from_label: lf,
                    to_label: lt,
                    outgoing: true,
                    edge_label: e.label,
                })
                .or_default()
                .push(Embedding::new(gi as u32, vec![e.from, e.to]));
            buckets
                .entry(DfsTuple {
                    from: 0,
                    to: 1,
                    from_label: lt,
                    to_label: lf,
                    outgoing: false,
                    edge_label: e.label,
                })
                .or_default()
                .push(Embedding::new(gi as u32, vec![e.to, e.from]));
        }
    }
    buckets
}

/// Extension buckets with inline deduplication.
///
/// Identical (graph, map) pairs arise when two embeddings extend to the
/// same one; keep each once. Dedup is keyed on (tuple, graph, *node set*)
/// — a 16-byte inline bitset — with an exact map comparison only among
/// the (rare) entries sharing a set, so the probe never clones a map.
/// The extended embedding itself is materialized only on accept, which
/// removes the per-candidate `emb.clone()` + `map.clone()` churn the
/// old `push_bucket` paid even for rejected duplicates.
#[derive(Default)]
struct Buckets {
    by_tuple: BTreeMap<DfsTuple, Vec<Embedding>>,
    /// (tuple, graph, extended node set) → indices into
    /// `by_tuple[tuple]` holding embeddings with that set.
    seen: HashMap<(DfsTuple, u32, NodeSet), Vec<u32>>,
}

impl Buckets {
    /// Records the extension of `emb` under `tuple`; `added` is the newly
    /// covered graph node (`None` for backward edges, which add no node).
    fn push(&mut self, tuple: DfsTuple, emb: &Embedding, added: Option<u32>) {
        let mut nodes = emb.node_set().clone();
        if let Some(n) = added {
            nodes.insert(n);
        }
        let bucket = self.by_tuple.entry(tuple).or_default();
        let slots = self.seen.entry((tuple, emb.graph, nodes)).or_default();
        let duplicate = slots.iter().any(|&i| {
            let have = &bucket[i as usize].map;
            match added {
                None => have == &emb.map,
                Some(n) => {
                    have.len() == emb.map.len() + 1
                        && have[..emb.map.len()] == emb.map[..]
                        && have[emb.map.len()] == n
                }
            }
        });
        if duplicate {
            return;
        }
        slots.push(bucket.len() as u32);
        bucket.push(match added {
            None => emb.clone(),
            Some(n) => emb.extended(n),
        });
    }
}

/// Enumerates every rightmost-path extension of `pattern` over its
/// embeddings, bucketing the extended embeddings by extension tuple.
///
/// Backward edges leave the rightmost node towards a node on the
/// rightmost path; forward edges attach a new graph node to any node on
/// the rightmost path (deepest first). Arc direction is free in both
/// cases — the tuple records it.
pub fn extensions(
    pattern: &Pattern,
    graphs: &[InputGraph],
    embeddings: &[Embedding],
) -> BTreeMap<DfsTuple, Vec<Embedding>> {
    let mut buckets = Buckets::default();
    let rightmost = pattern.rightmost();
    let rm_path = pattern.rightmost_path();
    let next_index = pattern.node_count() as u16;
    for emb in embeddings {
        let g = &graphs[emb.graph as usize];
        let rm_node = emb.map[rightmost as usize];
        // Backward extensions: rightmost node ↔ earlier rightmost-path
        // node, edge not yet in the pattern.
        for &v in &rm_path[..rm_path.len() - 1] {
            if pattern.has_edge(rightmost, v) {
                continue;
            }
            let v_node = emb.map[v as usize];
            for &ei in &g.out_edges[rm_node as usize] {
                let e = g.edges[ei as usize];
                if e.to == v_node {
                    buckets.push(
                        DfsTuple {
                            from: rightmost,
                            to: v,
                            from_label: pattern.node_label(rightmost as usize),
                            to_label: pattern.node_label(v as usize),
                            outgoing: true,
                            edge_label: e.label,
                        },
                        emb,
                        None,
                    );
                }
            }
            for &ei in &g.in_edges[rm_node as usize] {
                let e = g.edges[ei as usize];
                if e.from == v_node {
                    buckets.push(
                        DfsTuple {
                            from: rightmost,
                            to: v,
                            from_label: pattern.node_label(rightmost as usize),
                            to_label: pattern.node_label(v as usize),
                            outgoing: false,
                            edge_label: e.label,
                        },
                        emb,
                        None,
                    );
                }
            }
        }
        // Forward extensions from every rightmost-path node.
        for &u in rm_path {
            let u_node = emb.map[u as usize];
            for &ei in &g.out_edges[u_node as usize] {
                let e = g.edges[ei as usize];
                if emb.contains(e.to) {
                    continue;
                }
                buckets.push(
                    DfsTuple {
                        from: u,
                        to: next_index,
                        from_label: pattern.node_label(u as usize),
                        to_label: g.labels[e.to as usize],
                        outgoing: true,
                        edge_label: e.label,
                    },
                    emb,
                    Some(e.to),
                );
            }
            for &ei in &g.in_edges[u_node as usize] {
                let e = g.edges[ei as usize];
                if emb.contains(e.from) {
                    continue;
                }
                buckets.push(
                    DfsTuple {
                        from: u,
                        to: next_index,
                        from_label: pattern.node_label(u as usize),
                        to_label: g.labels[e.from as usize],
                        outgoing: false,
                        edge_label: e.label,
                    },
                    emb,
                    Some(e.from),
                );
            }
        }
    }
    buckets.by_tuple
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GEdge;
    use std::collections::HashSet;

    /// A: 0 →(1) 1 →(1) 2 with labels [7, 8, 7].
    fn path_graph() -> InputGraph {
        InputGraph::new(
            vec![7, 8, 7],
            vec![
                GEdge {
                    from: 0,
                    to: 1,
                    label: 1,
                },
                GEdge {
                    from: 1,
                    to: 2,
                    label: 1,
                },
            ],
        )
    }

    #[test]
    fn seeds_enumerate_both_orientations() {
        let g = path_graph();
        let seeds = seed_buckets(std::slice::from_ref(&g));
        // Two edges × two orientations, but 0→1 and 1→2 have different
        // label pairs: (7,out,8), (8,in,7), (8,out,7), (7,in,8).
        assert_eq!(seeds.len(), 4);
        let total: usize = seeds.values().map(Vec::len).sum();
        assert_eq!(total, 4);
    }

    #[test]
    fn node_set_tracks_map() {
        let e = Embedding::new(0, vec![5, 2, 9]);
        assert!(e.contains(2) && e.contains(5) && e.contains(9));
        assert!(!e.contains(3));
        assert_eq!(e.sorted_nodes(), vec![2, 5, 9]);
        assert_eq!(e.node_set().len(), 3);
        let grown = e.extended(4);
        assert_eq!(grown.map, vec![5, 2, 9, 4]);
        assert_eq!(grown.sorted_nodes(), vec![2, 4, 5, 9]);
        // The parent is untouched.
        assert!(!e.contains(4));
    }

    #[test]
    fn forward_extension_grows_embeddings() {
        let g = path_graph();
        let graphs = std::slice::from_ref(&g);
        let seeds = seed_buckets(graphs);
        // Take the seed (7)-out->(8): embedding [0, 1].
        let (tuple, embs) = seeds
            .iter()
            .find(|(t, _)| t.from_label == 7 && t.outgoing && t.to_label == 8)
            .unwrap();
        let pattern = Pattern::root(*tuple);
        let exts = extensions(&pattern, graphs, embs);
        // From node 1 (dfs idx 1) we can go forward to node 2.
        let fwd = exts
            .keys()
            .find(|t| t.is_forward() && t.to == 2)
            .expect("a forward extension exists");
        assert_eq!(fwd.to_label, 7);
        let new_embs = &exts[fwd];
        assert_eq!(new_embs[0].map, vec![0, 1, 2]);
        assert_eq!(new_embs[0].sorted_nodes(), vec![0, 1, 2]);
    }

    #[test]
    fn backward_extension_closes_cycles() {
        // Triangle in the undirected sense: 0→1, 1→2, 0→2.
        let g = InputGraph::new(
            vec![5, 5, 5],
            vec![
                GEdge {
                    from: 0,
                    to: 1,
                    label: 1,
                },
                GEdge {
                    from: 1,
                    to: 2,
                    label: 1,
                },
                GEdge {
                    from: 0,
                    to: 2,
                    label: 1,
                },
            ],
        );
        let graphs = std::slice::from_ref(&g);
        let seeds = seed_buckets(graphs);
        // Grow a two-edge chain, then expect a backward tuple (2, 0).
        let (t0, e0) = seeds
            .iter()
            .find(|(t, _)| t.outgoing)
            .map(|(t, e)| (*t, e.clone()))
            .unwrap();
        let p = Pattern::root(t0);
        let exts = extensions(&p, graphs, &e0);
        let (t1, e1) = exts
            .iter()
            .find(|(t, _)| t.is_forward() && t.from == 1)
            .map(|(t, e)| (*t, e.clone()))
            .expect("chain extension exists");
        let p2 = p.extend(t1);
        let exts2 = extensions(&p2, graphs, &e1);
        assert!(
            exts2.keys().any(|t| !t.is_forward()),
            "triangle produces a backward extension"
        );
    }

    /// Dense buckets (a star graph puts every seed embedding in one
    /// bucket) must stay deduplicated after the set-keyed rewrite of the
    /// bucket dedup — same invariant the old linear scan enforced.
    #[test]
    fn dense_bucket_extensions_stay_unique() {
        let n_leaves = 24u32;
        let labels: Vec<u32> = std::iter::once(1)
            .chain(std::iter::repeat_n(2, n_leaves as usize))
            .collect();
        let edges: Vec<GEdge> = (1..=n_leaves)
            .map(|leaf| GEdge {
                from: 0,
                to: leaf,
                label: 1,
            })
            .collect();
        let g = InputGraph::new(labels, edges);
        let graphs = std::slice::from_ref(&g);
        let seeds = seed_buckets(graphs);
        for (t, e) in &seeds {
            let p = Pattern::root(*t);
            let exts = extensions(&p, graphs, e);
            for (xt, xe) in &exts {
                let unique: HashSet<&Embedding> = xe.iter().collect();
                assert_eq!(unique.len(), xe.len(), "duplicates under {xt:?}");
            }
        }
    }

    #[test]
    fn embeddings_never_reuse_nodes() {
        // Self-loop-free check: in a 2-node graph with one edge, growing
        // beyond 2 nodes is impossible.
        let g = InputGraph::new(
            vec![1, 1],
            vec![GEdge {
                from: 0,
                to: 1,
                label: 1,
            }],
        );
        let graphs = std::slice::from_ref(&g);
        let seeds = seed_buckets(graphs);
        for (t, e) in &seeds {
            let p = Pattern::root(*t);
            let exts = extensions(&p, graphs, e);
            assert!(exts.is_empty());
        }
    }
}
