//! Embedding lists and rightmost-path extension.
//!
//! Unlike classical gSpan, which re-runs subgraph isomorphism to count
//! support, this engine carries every embedding along the search (the
//! style of MoFa/Gaston): extensions are enumerated by scanning the
//! embeddings, which is what makes Edgar's occurrence counting possible.

use std::collections::{BTreeMap, HashSet};

use crate::dfs_code::{DfsTuple, Pattern};
use crate::graph::InputGraph;

/// One occurrence of a pattern in an input graph: `map[dfs_index]` is the
/// graph node playing that pattern role.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Embedding {
    /// Index of the graph within the database.
    pub graph: u32,
    /// DFS index → graph node.
    pub map: Vec<u32>,
}

impl Embedding {
    /// Whether the graph node is already used by this embedding.
    pub fn contains(&self, node: u32) -> bool {
        self.map.contains(&node)
    }

    /// The node set as a sorted vector (for overlap detection and
    /// node-set deduplication).
    pub fn sorted_nodes(&self) -> Vec<u32> {
        let mut v = self.map.clone();
        v.sort_unstable();
        v
    }
}

/// Enumerates all single-edge patterns with their embeddings, keyed and
/// sorted by tuple.
pub fn seed_buckets(graphs: &[InputGraph]) -> BTreeMap<DfsTuple, Vec<Embedding>> {
    let mut buckets: BTreeMap<DfsTuple, Vec<Embedding>> = BTreeMap::new();
    for (gi, g) in graphs.iter().enumerate() {
        for e in &g.edges {
            let lf = g.labels[e.from as usize];
            let lt = g.labels[e.to as usize];
            // Start the DFS at either endpoint.
            buckets
                .entry(DfsTuple {
                    from: 0,
                    to: 1,
                    from_label: lf,
                    to_label: lt,
                    outgoing: true,
                    edge_label: e.label,
                })
                .or_default()
                .push(Embedding {
                    graph: gi as u32,
                    map: vec![e.from, e.to],
                });
            buckets
                .entry(DfsTuple {
                    from: 0,
                    to: 1,
                    from_label: lt,
                    to_label: lf,
                    outgoing: false,
                    edge_label: e.label,
                })
                .or_default()
                .push(Embedding {
                    graph: gi as u32,
                    map: vec![e.to, e.from],
                });
        }
    }
    buckets
}

/// Enumerates every rightmost-path extension of `pattern` over its
/// embeddings, bucketing the extended embeddings by extension tuple.
///
/// Backward edges leave the rightmost node towards a node on the
/// rightmost path; forward edges attach a new graph node to any node on
/// the rightmost path (deepest first). Arc direction is free in both
/// cases — the tuple records it.
pub fn extensions(
    pattern: &Pattern,
    graphs: &[InputGraph],
    embeddings: &[Embedding],
) -> BTreeMap<DfsTuple, Vec<Embedding>> {
    let mut buckets: BTreeMap<DfsTuple, Vec<Embedding>> = BTreeMap::new();
    let mut seen: HashSet<(DfsTuple, Embedding)> = HashSet::new();
    let rightmost = pattern.rightmost();
    let rm_path = pattern.rightmost_path();
    let next_index = pattern.node_count() as u16;
    for emb in embeddings {
        let g = &graphs[emb.graph as usize];
        let rm_node = emb.map[rightmost as usize];
        // Backward extensions: rightmost node ↔ earlier rightmost-path
        // node, edge not yet in the pattern.
        for &v in &rm_path[..rm_path.len() - 1] {
            if pattern.has_edge(rightmost, v) {
                continue;
            }
            let v_node = emb.map[v as usize];
            for &ei in &g.out_edges[rm_node as usize] {
                let e = g.edges[ei as usize];
                if e.to == v_node {
                    push_bucket(
                        &mut buckets,
                        &mut seen,
                        DfsTuple {
                            from: rightmost,
                            to: v,
                            from_label: pattern.node_label(rightmost as usize),
                            to_label: pattern.node_label(v as usize),
                            outgoing: true,
                            edge_label: e.label,
                        },
                        emb.clone(),
                    );
                }
            }
            for &ei in &g.in_edges[rm_node as usize] {
                let e = g.edges[ei as usize];
                if e.from == v_node {
                    push_bucket(
                        &mut buckets,
                        &mut seen,
                        DfsTuple {
                            from: rightmost,
                            to: v,
                            from_label: pattern.node_label(rightmost as usize),
                            to_label: pattern.node_label(v as usize),
                            outgoing: false,
                            edge_label: e.label,
                        },
                        emb.clone(),
                    );
                }
            }
        }
        // Forward extensions from every rightmost-path node.
        for &u in rm_path {
            let u_node = emb.map[u as usize];
            for &ei in &g.out_edges[u_node as usize] {
                let e = g.edges[ei as usize];
                if emb.contains(e.to) {
                    continue;
                }
                let mut map = emb.map.clone();
                map.push(e.to);
                push_bucket(
                    &mut buckets,
                    &mut seen,
                    DfsTuple {
                        from: u,
                        to: next_index,
                        from_label: pattern.node_label(u as usize),
                        to_label: g.labels[e.to as usize],
                        outgoing: true,
                        edge_label: e.label,
                    },
                    Embedding {
                        graph: emb.graph,
                        map,
                    },
                );
            }
            for &ei in &g.in_edges[u_node as usize] {
                let e = g.edges[ei as usize];
                if emb.contains(e.from) {
                    continue;
                }
                let mut map = emb.map.clone();
                map.push(e.from);
                push_bucket(
                    &mut buckets,
                    &mut seen,
                    DfsTuple {
                        from: u,
                        to: next_index,
                        from_label: pattern.node_label(u as usize),
                        to_label: g.labels[e.from as usize],
                        outgoing: false,
                        edge_label: e.label,
                    },
                    Embedding {
                        graph: emb.graph,
                        map,
                    },
                );
            }
        }
    }
    buckets
}

fn push_bucket(
    buckets: &mut BTreeMap<DfsTuple, Vec<Embedding>>,
    seen: &mut HashSet<(DfsTuple, Embedding)>,
    tuple: DfsTuple,
    emb: Embedding,
) {
    // Identical (graph, map) pairs arise when two embeddings extend to the
    // same one; keep each once. The hash set replaces a linear scan of the
    // bucket, which turned dense buckets (N² embeddings in a star graph)
    // into O(N⁴) work.
    if seen.insert((tuple, emb.clone())) {
        buckets.entry(tuple).or_default().push(emb);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GEdge;

    /// A: 0 →(1) 1 →(1) 2 with labels [7, 8, 7].
    fn path_graph() -> InputGraph {
        InputGraph::new(
            vec![7, 8, 7],
            vec![
                GEdge {
                    from: 0,
                    to: 1,
                    label: 1,
                },
                GEdge {
                    from: 1,
                    to: 2,
                    label: 1,
                },
            ],
        )
    }

    #[test]
    fn seeds_enumerate_both_orientations() {
        let g = path_graph();
        let seeds = seed_buckets(std::slice::from_ref(&g));
        // Two edges × two orientations, but 0→1 and 1→2 have different
        // label pairs: (7,out,8), (8,in,7), (8,out,7), (7,in,8).
        assert_eq!(seeds.len(), 4);
        let total: usize = seeds.values().map(Vec::len).sum();
        assert_eq!(total, 4);
    }

    #[test]
    fn forward_extension_grows_embeddings() {
        let g = path_graph();
        let graphs = std::slice::from_ref(&g);
        let seeds = seed_buckets(graphs);
        // Take the seed (7)-out->(8): embedding [0, 1].
        let (tuple, embs) = seeds
            .iter()
            .find(|(t, _)| t.from_label == 7 && t.outgoing && t.to_label == 8)
            .unwrap();
        let pattern = Pattern::root(*tuple);
        let exts = extensions(&pattern, graphs, embs);
        // From node 1 (dfs idx 1) we can go forward to node 2.
        let fwd = exts
            .keys()
            .find(|t| t.is_forward() && t.to == 2)
            .expect("a forward extension exists");
        assert_eq!(fwd.to_label, 7);
        let new_embs = &exts[fwd];
        assert_eq!(new_embs[0].map, vec![0, 1, 2]);
    }

    #[test]
    fn backward_extension_closes_cycles() {
        // Triangle in the undirected sense: 0→1, 1→2, 0→2.
        let g = InputGraph::new(
            vec![5, 5, 5],
            vec![
                GEdge {
                    from: 0,
                    to: 1,
                    label: 1,
                },
                GEdge {
                    from: 1,
                    to: 2,
                    label: 1,
                },
                GEdge {
                    from: 0,
                    to: 2,
                    label: 1,
                },
            ],
        );
        let graphs = std::slice::from_ref(&g);
        let seeds = seed_buckets(graphs);
        // Grow a two-edge chain, then expect a backward tuple (2, 0).
        let (t0, e0) = seeds
            .iter()
            .find(|(t, _)| t.outgoing)
            .map(|(t, e)| (*t, e.clone()))
            .unwrap();
        let p = Pattern::root(t0);
        let exts = extensions(&p, graphs, &e0);
        let (t1, e1) = exts
            .iter()
            .find(|(t, _)| t.is_forward() && t.from == 1)
            .map(|(t, e)| (*t, e.clone()))
            .expect("chain extension exists");
        let p2 = p.extend(t1);
        let exts2 = extensions(&p2, graphs, &e1);
        assert!(
            exts2.keys().any(|t| !t.is_forward()),
            "triangle produces a backward extension"
        );
    }

    /// Dense buckets (a star graph puts every seed embedding in one
    /// bucket) must stay deduplicated after the hash-set rewrite of
    /// `push_bucket` — same invariant the old linear scan enforced.
    #[test]
    fn dense_bucket_extensions_stay_unique() {
        let n_leaves = 24u32;
        let labels: Vec<u32> = std::iter::once(1)
            .chain(std::iter::repeat_n(2, n_leaves as usize))
            .collect();
        let edges: Vec<GEdge> = (1..=n_leaves)
            .map(|leaf| GEdge {
                from: 0,
                to: leaf,
                label: 1,
            })
            .collect();
        let g = InputGraph::new(labels, edges);
        let graphs = std::slice::from_ref(&g);
        let seeds = seed_buckets(graphs);
        for (t, e) in &seeds {
            let p = Pattern::root(*t);
            let exts = extensions(&p, graphs, e);
            for (xt, xe) in &exts {
                let unique: HashSet<&Embedding> = xe.iter().collect();
                assert_eq!(unique.len(), xe.len(), "duplicates under {xt:?}");
            }
        }
    }

    #[test]
    fn embeddings_never_reuse_nodes() {
        // Self-loop-free check: in a 2-node graph with one edge, growing
        // beyond 2 nodes is impossible.
        let g = InputGraph::new(
            vec![1, 1],
            vec![GEdge {
                from: 0,
                to: 1,
                label: 1,
            }],
        );
        let graphs = std::slice::from_ref(&g);
        let seeds = seed_buckets(graphs);
        for (t, e) in &seeds {
            let p = Pattern::root(*t);
            let exts = extensions(&p, graphs, e);
            assert!(exts.is_empty());
        }
    }
}
