//! The frequent-fragment search driver: DgSpan and Edgar.

use std::collections::HashSet;
use std::sync::Arc;

use gpa_trace::{NoopTracer, Tracer, Value};

use crate::dfs_code::Pattern;
use crate::embed::{extensions, seed_buckets, Embedding};
use crate::graph::InputGraph;
use crate::mis::{
    collision_graph, disjoint_count_traced, has_k_disjoint, max_independent_set_traced,
};
use crate::nodeset::NodeSet;

/// How a fragment's support is counted.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Support {
    /// **DgSpan**: the number of database graphs containing at least one
    /// embedding (classical gSpan counting, directed).
    Graphs,
    /// **Edgar**: the number of *non-overlapping* embeddings — the size of
    /// a maximum independent set in the embedding collision graph, summed
    /// over graphs.
    #[default]
    Embeddings,
}

/// Mining configuration.
#[derive(Clone, Debug)]
pub struct Config {
    /// Minimum support for a fragment to be reported and extended.
    pub min_support: usize,
    /// Support semantics (DgSpan vs Edgar).
    pub support: Support,
    /// Upper bound on fragment size in nodes (a backstop against
    /// pathological growth; the benefit-driven consumer rarely wants huge
    /// fragments anyway).
    pub max_nodes: usize,
    /// Upper bound on the embedding list carried per pattern. Blocks with
    /// many identical independent instructions have factorially many
    /// embeddings; lists beyond the cap are truncated (keeping the
    /// earliest embeddings), trading completeness for bounded work.
    pub max_embeddings: usize,
    /// Upper bound on the number of patterns visited per mining run. The
    /// DFS-code lattice of large, repetitive basic blocks (the paper's
    /// rijndael, which took hours on the original implementation) is
    /// exponentially large; the budget makes one mining round a bounded
    /// greedy search. `usize::MAX` disables the cap.
    pub max_patterns: usize,
    /// Telemetry sink for search counters and degradation events
    /// (truncated embedding lists, exhausted pattern budgets, greedy
    /// support answers). Defaults to [`NoopTracer`]; tracing never
    /// changes what is mined.
    pub tracer: Arc<dyn Tracer>,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            min_support: 2,
            support: Support::Embeddings,
            max_nodes: 24,
            max_embeddings: 4096,
            max_patterns: usize::MAX,
            tracer: Arc::new(NoopTracer),
        }
    }
}

/// A frequent fragment: its canonical pattern and its occurrences.
#[derive(Clone, Debug)]
pub struct Frequent {
    /// The canonical pattern (minimal DFS code).
    pub pattern: Pattern,
    /// All embeddings, deduplicated by node set (one map kept per set).
    pub embeddings: Vec<Embedding>,
    /// The support under the configured counting.
    pub support: usize,
}

/// Deduplicates embeddings by (graph, node-set), keeping the first map
/// seen for each set.
fn dedup_by_node_set(embeddings: &[Embedding]) -> Vec<Embedding> {
    let mut seen: HashSet<(u32, NodeSet)> = HashSet::new();
    let mut out = Vec::new();
    for e in embeddings {
        if seen.insert((e.graph, e.node_set().clone())) {
            out.push(e.clone());
        }
    }
    out
}

/// Counts support of a set of node-set-deduplicated embeddings.
///
/// Under [`Support::Embeddings`] this is the non-overlapping count
/// (summed per graph) — exact up to the per-graph set limit of the
/// bounded MIS solver, the greedy lower bound beyond it.
pub fn count_support(embeddings: &[Embedding], support: Support) -> usize {
    count_support_traced(embeddings, support, &NoopTracer)
}

/// [`count_support`] with telemetry on which gate path answered.
pub fn count_support_traced(
    embeddings: &[Embedding],
    support: Support,
    tracer: &dyn Tracer,
) -> usize {
    match support {
        Support::Graphs => {
            let graphs: HashSet<u32> = embeddings.iter().map(|e| e.graph).collect();
            graphs.len()
        }
        Support::Embeddings => {
            let mut total = 0;
            for sets in node_sets_by_graph(embeddings).values() {
                total += disjoint_count_traced(sets, tracer);
            }
            total
        }
    }
}

/// Whether the support reaches `min` — exact for the paper's minimum
/// support of 2 under both counting schemes, and for any `min` while
/// the per-graph embedding counts stay within the exact-MIS limit.
pub fn support_at_least(embeddings: &[Embedding], support: Support, min: usize) -> bool {
    support_at_least_traced(embeddings, support, min, &NoopTracer)
}

/// [`support_at_least`] with telemetry on which gate path answered.
pub fn support_at_least_traced(
    embeddings: &[Embedding],
    support: Support,
    min: usize,
    tracer: &dyn Tracer,
) -> bool {
    match support {
        Support::Graphs => {
            let mut graphs = HashSet::new();
            for e in embeddings {
                graphs.insert(e.graph);
                if graphs.len() >= min {
                    return true;
                }
            }
            graphs.len() >= min
        }
        Support::Embeddings => {
            if min <= 2 {
                // Disjoint pairs across different graphs count too.
                let by_graph = node_sets_by_graph(embeddings);
                if by_graph.len() >= min.min(2) && by_graph.len() >= 2 {
                    return true;
                }
                return by_graph.values().any(|sets| has_k_disjoint(sets, min));
            }
            // min > 2 must NOT be answered by the greedy count alone: a
            // greedy undershoot here prunes a whole lattice subtree, and
            // the antimonotone gate must never under-approximate. The
            // traced count is exact while each graph's embedding count
            // stays within the bounded-MIS limit.
            let mut total = 0;
            for sets in node_sets_by_graph(embeddings).values() {
                total += disjoint_count_traced(sets, tracer);
                if total >= min {
                    return true;
                }
            }
            false
        }
    }
}

fn node_sets_by_graph(embeddings: &[Embedding]) -> std::collections::BTreeMap<u32, Vec<NodeSet>> {
    let mut by_graph: std::collections::BTreeMap<u32, Vec<NodeSet>> = Default::default();
    for e in embeddings {
        by_graph
            .entry(e.graph)
            .or_default()
            .push(e.node_set().clone());
    }
    by_graph
}

/// Computes the maximum number of pairwise node-disjoint embeddings and
/// returns `(count, chosen indices)`.
///
/// Embeddings are grouped per graph; within each graph a maximum
/// independent set of the collision graph is computed.
pub fn non_overlapping_count(embeddings: &[Embedding]) -> (usize, Vec<usize>) {
    non_overlapping_count_traced(embeddings, &NoopTracer)
}

/// [`non_overlapping_count`] with MIS telemetry (component sizes,
/// exact-vs-greedy path, budget exhaustions).
pub fn non_overlapping_count_traced(
    embeddings: &[Embedding],
    tracer: &dyn Tracer,
) -> (usize, Vec<usize>) {
    let mut chosen = Vec::new();
    let mut by_graph: std::collections::BTreeMap<u32, Vec<usize>> = Default::default();
    for (i, e) in embeddings.iter().enumerate() {
        by_graph.entry(e.graph).or_default().push(i);
    }
    for indices in by_graph.values() {
        let sets: Vec<NodeSet> = indices
            .iter()
            .map(|&i| embeddings[i].node_set().clone())
            .collect();
        let adj = collision_graph(&sets);
        for local in max_independent_set_traced(&adj, tracer) {
            chosen.push(indices[local]);
        }
    }
    chosen.sort_unstable();
    (chosen.len(), chosen)
}

/// What the streaming visitor wants done with a pattern's subtree.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum GrowDecision {
    /// Keep extending this pattern.
    Continue,
    /// Do not explore any extension of this pattern (e.g. a benefit bound
    /// shows no descendant can be useful).
    SkipChildren,
}

/// Mines all frequent connected fragments (two or more nodes) of the
/// database, collecting them into a vector.
///
/// For large inputs prefer [`mine_streaming`], which does not materialize
/// the (possibly huge) result set and lets the consumer prune subtrees.
pub fn mine(graphs: &[InputGraph], config: &Config) -> Vec<Frequent> {
    let mut results = Vec::new();
    mine_streaming(graphs, config, &mut |f| {
        results.push(f.clone());
        GrowDecision::Continue
    });
    results
}

/// Mines frequent fragments, invoking `visit` on each one as it is
/// discovered (parents strictly before children).
///
/// The search is a depth-first traversal of the DFS-code lattice with the
/// two prunings of the paper: canonical-form (minimality) pruning and
/// frequency antimonotone pruning — under [`Support::Embeddings`] the
/// embeddings of a child map injectively onto disjoint embeddings of its
/// parent, so MIS-based support is antimonotone as well (§3.4). The
/// visitor's [`GrowDecision`] adds consumer-driven pruning on top (the PA
/// driver cuts subtrees whose best possible benefit cannot beat the
/// current best candidate — the paper's §3.5 "PA-specific pruning").
pub fn mine_streaming(
    graphs: &[InputGraph],
    config: &Config,
    visit: &mut dyn FnMut(&Frequent) -> GrowDecision,
) {
    mine_streaming_partition(graphs, config, 0, 1, visit);
}

/// [`mine_streaming`] restricted to the seeds of one worker in a
/// round-robin partition: worker `worker` of `stride` visits exactly the
/// seed patterns with index `si % stride == worker` (in seed order), each
/// grown to completion.
///
/// The DFS-code lattice decomposes perfectly at the seed level, so
/// running every worker of a partition covers exactly the patterns one
/// [`mine_streaming`] call visits — this is the building block both
/// [`mine_parallel`] and the optimizer's threaded detection use. Each
/// call owns a full `config.max_patterns` budget; when budgets are tight
/// enough to exhaust, a partitioned run may therefore visit a superset of
/// the single-threaded run.
///
/// # Panics
///
/// Panics if `stride` is zero or `worker >= stride`.
pub fn mine_streaming_partition(
    graphs: &[InputGraph],
    config: &Config,
    worker: usize,
    stride: usize,
    visit: &mut dyn FnMut(&Frequent) -> GrowDecision,
) {
    assert!(stride > 0, "partition stride must be positive");
    assert!(
        worker < stride,
        "worker {worker} out of range for stride {stride}"
    );
    let mut budget = config.max_patterns;
    for (si, (tuple, embeddings)) in seed_buckets(graphs).into_iter().enumerate() {
        if si % stride != worker {
            continue;
        }
        if !mine_seed(tuple, embeddings, graphs, config, visit, &mut budget) {
            // The pattern budget ran dry mid-seed: the rest of this
            // worker's lattice share is silently unexplored — trace it.
            config.tracer.event(
                "mine.budget_exhausted",
                &[
                    ("seed", Value::from(si)),
                    ("worker", Value::from(worker)),
                    ("stride", Value::from(stride)),
                ],
            );
            return;
        }
    }
}

/// Grows one seed pattern to completion under the shared gates
/// (canonicality, embedding cap, support); returns `false` when the
/// pattern budget is exhausted.
///
/// Public so callers that need per-seed control (e.g. a partitioned
/// search that tracks which seed produced a result) can drive the
/// lattice themselves from [`crate::embed::seed_buckets`].
pub fn mine_seed(
    tuple: crate::dfs_code::DfsTuple,
    mut embeddings: Vec<Embedding>,
    graphs: &[InputGraph],
    config: &Config,
    visit: &mut dyn FnMut(&Frequent) -> GrowDecision,
    budget: &mut usize,
) -> bool {
    let tracer = &*config.tracer;
    let pattern = Pattern::root(tuple);
    if !pattern.is_min_cached(tracer) {
        tracer.count("mine.prune_non_canonical", 1);
        return true;
    }
    if embeddings.len() > config.max_embeddings {
        tracer.event(
            "mine.embeddings_truncated",
            &[
                ("pattern_nodes", Value::from(pattern.node_count())),
                ("before", Value::from(embeddings.len())),
                ("after", Value::from(config.max_embeddings)),
            ],
        );
        embeddings.truncate(config.max_embeddings);
    }
    let deduped = dedup_by_node_set(&embeddings);
    if !support_at_least_traced(&deduped, config.support, config.min_support, tracer) {
        tracer.count("mine.prune_infrequent", 1);
        return true;
    }
    let support = count_support_traced(&deduped, config.support, tracer);
    grow(
        pattern,
        &embeddings,
        deduped,
        support,
        graphs,
        config,
        visit,
        budget,
    )
}

/// Mines in parallel across `threads` worker threads, partitioning the
/// seed patterns round-robin and giving each worker an equal share of the
/// pattern budget. Results are concatenated in a deterministic order
/// (seed order, then discovery order within a seed).
///
/// This reproduces the shared-memory parallelization the paper's authors
/// report for their miner (Meinl et al., "Parallel Mining for Frequent
/// Fragments on a Shared-Memory Multiprocessor", cited as \[33\]): the
/// DFS-code lattice decomposes perfectly at the seed level, so speedups
/// are near-linear until seed subtree sizes skew.
///
/// # Panics
///
/// Panics if `threads` is zero.
pub fn mine_parallel(graphs: &[InputGraph], config: &Config, threads: usize) -> Vec<Frequent> {
    assert!(threads > 0, "at least one worker thread is required");
    // Seed work items, precomputed sequentially (cheap relative to
    // growth).
    let seeds: Vec<(crate::dfs_code::DfsTuple, Vec<Embedding>)> =
        seed_buckets(graphs).into_iter().collect();
    if threads == 1 || seeds.len() <= 1 {
        return mine(graphs, config);
    }
    let per_thread_budget = (config.max_patterns / threads).max(1);
    let results: Vec<Vec<(usize, Vec<Frequent>)>> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for worker in 0..threads {
            let seeds = &seeds;
            let config = config.clone();
            handles.push(scope.spawn(move || {
                let mut out: Vec<(usize, Vec<Frequent>)> = Vec::new();
                for (si, (tuple, embeddings)) in seeds.iter().enumerate() {
                    if si % threads != worker {
                        continue;
                    }
                    let mut found = Vec::new();
                    let mut budget = per_thread_budget;
                    if !mine_seed(
                        *tuple,
                        embeddings.clone(),
                        graphs,
                        &config,
                        &mut |f| {
                            found.push(f.clone());
                            GrowDecision::Continue
                        },
                        &mut budget,
                    ) {
                        config.tracer.event(
                            "mine.budget_exhausted",
                            &[
                                ("seed", Value::from(si)),
                                ("worker", Value::from(worker)),
                                ("stride", Value::from(threads)),
                            ],
                        );
                    }
                    out.push((si, found));
                }
                out
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    });
    // Deterministic merge by seed index.
    let mut by_seed: Vec<(usize, Vec<Frequent>)> = results.into_iter().flatten().collect();
    by_seed.sort_by_key(|(si, _)| *si);
    by_seed.into_iter().flat_map(|(_, v)| v).collect()
}

/// Returns `false` when the pattern budget is exhausted (abort the run).
#[allow(clippy::too_many_arguments)]
fn grow(
    pattern: Pattern,
    embeddings: &[Embedding],
    deduped: Vec<Embedding>,
    support: usize,
    graphs: &[InputGraph],
    config: &Config,
    visit: &mut dyn FnMut(&Frequent) -> GrowDecision,
    budget: &mut usize,
) -> bool {
    if *budget == 0 {
        return false;
    }
    *budget -= 1;
    let tracer = &*config.tracer;
    // Exactly one of {subtree_skipped, stopped_max_nodes, expanded} is
    // counted per visited pattern, so the identity
    //   patterns_visited == expanded + subtree_skipped + stopped_max_nodes
    // holds by construction (`gpa trace-check` asserts it).
    tracer.count("mine.patterns_visited", 1);
    let frequent = Frequent {
        pattern,
        embeddings: deduped,
        support,
    };
    let decision = visit(&frequent);
    let pattern = frequent.pattern;
    if decision == GrowDecision::SkipChildren {
        tracer.count("mine.subtree_skipped", 1);
        return true;
    }
    if pattern.node_count() >= config.max_nodes {
        tracer.count("mine.stopped_max_nodes", 1);
        return true;
    }
    tracer.count("mine.expanded", 1);
    for (tuple, mut child_embeddings) in extensions(&pattern, graphs, embeddings) {
        tracer.count("mine.extensions_generated", 1);
        let child = pattern.extend(tuple);
        if !child.is_min_cached(tracer) {
            tracer.count("mine.prune_non_canonical", 1);
            continue;
        }
        if child_embeddings.len() > config.max_embeddings {
            tracer.event(
                "mine.embeddings_truncated",
                &[
                    ("pattern_nodes", Value::from(child.node_count())),
                    ("before", Value::from(child_embeddings.len())),
                    ("after", Value::from(config.max_embeddings)),
                ],
            );
            child_embeddings.truncate(config.max_embeddings);
        }
        let child_deduped = dedup_by_node_set(&child_embeddings);
        if !support_at_least_traced(&child_deduped, config.support, config.min_support, tracer) {
            tracer.count("mine.prune_infrequent", 1);
            continue;
        }
        let child_support = count_support_traced(&child_deduped, config.support, tracer);
        if !grow(
            child,
            &child_embeddings,
            child_deduped,
            child_support,
            graphs,
            config,
            visit,
            budget,
        ) {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpa_arm::parse::parse_listing;
    use gpa_cfg::Item;
    use gpa_dfg::{build_dfg_from_items, LabelMode};

    fn graphs_of(listings: &[&str]) -> Vec<InputGraph> {
        let dfgs: Vec<_> = listings
            .iter()
            .map(|asm| {
                let items: Vec<Item> = parse_listing(asm)
                    .unwrap()
                    .into_iter()
                    .map(Item::Insn)
                    .collect();
                build_dfg_from_items("bb", 0, &items, LabelMode::Exact)
            })
            .collect();
        InputGraph::from_dfgs(&dfgs).0
    }

    const RUNNING_EXAMPLE: &str = "ldr r3, [r1]!\n\
                                   sub r2, r2, r3\n\
                                   add r4, r2, #4\n\
                                   ldr r3, [r1]!\n\
                                   sub r2, r2, r3\n\
                                   ldr r3, [r1]!\n\
                                   add r4, r2, #4";

    #[test]
    fn running_example_edgar_finds_three_node_fragments() {
        let graphs = graphs_of(&[RUNNING_EXAMPLE]);
        let found = mine(
            &graphs,
            &Config {
                min_support: 2,
                support: Support::Embeddings,
                max_nodes: 8,
                ..Config::default()
            },
        );
        // Figs. 4/5: three-node fragments with two disjoint embeddings.
        let three: Vec<_> = found
            .iter()
            .filter(|f| f.pattern.node_count() == 3 && f.support >= 2)
            .collect();
        assert!(
            !three.is_empty(),
            "expected 3-node fragments, got: {:?}",
            found
                .iter()
                .map(|f| (f.pattern.node_count(), f.support))
                .collect::<Vec<_>>()
        );
        // And the 2-node ldr→sub fragment from Fig. 3 as well.
        assert!(found
            .iter()
            .any(|f| f.pattern.node_count() == 2 && f.support >= 2));
    }

    #[test]
    fn dgspan_counts_graphs_not_occurrences() {
        // Both occurrences live in ONE graph: DgSpan support = 1,
        // Edgar support = 2. (The paper's central observation.)
        let graphs = graphs_of(&[RUNNING_EXAMPLE]);
        let dg = mine(
            &graphs,
            &Config {
                min_support: 2,
                support: Support::Graphs,
                max_nodes: 8,
                ..Config::default()
            },
        );
        assert!(
            dg.is_empty(),
            "a single graph can never reach graph-support 2"
        );
        // With the block duplicated into two graphs, DgSpan finds them.
        let graphs2 = graphs_of(&[RUNNING_EXAMPLE, RUNNING_EXAMPLE]);
        let dg2 = mine(
            &graphs2,
            &Config {
                min_support: 2,
                support: Support::Graphs,
                max_nodes: 8,
                ..Config::default()
            },
        );
        assert!(dg2.iter().any(|f| f.pattern.node_count() >= 3));
    }

    #[test]
    fn overlapping_embeddings_counted_once() {
        // Fig. 8: two embeddings sharing the middle ldr → only one counts.
        // Chain: ldr; sub; ldr; sub — pattern (ldr→sub) has 2 disjoint
        // embeddings; pattern (sub→ldr… ) sharing nodes collapses.
        let graphs = graphs_of(&["ldr r3, [r1]!\nsub r2, r2, r3\nldr r3, [r1]!\nsub r2, r2, r3"]);
        let found = mine(
            &graphs,
            &Config {
                min_support: 2,
                support: Support::Embeddings,
                max_nodes: 4,
                ..Config::default()
            },
        );
        let pair = found
            .iter()
            .find(|f| f.pattern.node_count() == 2 && f.support == 2);
        assert!(pair.is_some(), "ldr→sub appears twice disjointly");
        // No fragment can have support > 2 here.
        assert!(found.iter().all(|f| f.support <= 2));
    }

    #[test]
    fn no_frequent_fragments_in_unique_code() {
        let graphs = graphs_of(&["mov r0, #1\nadd r1, r0, #2\nmul r2, r1, r0"]);
        let found = mine(&graphs, &Config::default());
        assert!(found.is_empty());
    }

    #[test]
    fn max_nodes_caps_growth() {
        let graphs = graphs_of(&[RUNNING_EXAMPLE, RUNNING_EXAMPLE]);
        let found = mine(
            &graphs,
            &Config {
                min_support: 2,
                support: Support::Graphs,
                max_nodes: 2,
                ..Config::default()
            },
        );
        assert!(found.iter().all(|f| f.pattern.node_count() <= 2));
    }

    #[test]
    fn embeddings_are_node_set_deduplicated() {
        let graphs = graphs_of(&[RUNNING_EXAMPLE]);
        let found = mine(&graphs, &Config::default());
        for f in &found {
            let mut sets: Vec<_> = f
                .embeddings
                .iter()
                .map(|e| (e.graph, e.sorted_nodes()))
                .collect();
            let before = sets.len();
            sets.sort();
            sets.dedup();
            assert_eq!(sets.len(), before, "duplicate node sets in {:?}", f.pattern);
        }
    }

    #[test]
    fn counter_identity_holds_and_tracing_changes_nothing() {
        use gpa_trace::CounterTracer;
        let graphs = graphs_of(&[RUNNING_EXAMPLE, RUNNING_EXAMPLE]);
        let plain = Config {
            min_support: 2,
            support: Support::Embeddings,
            max_nodes: 8,
            ..Config::default()
        };
        let baseline = mine(&graphs, &plain);
        let tracer = std::sync::Arc::new(CounterTracer::new());
        let traced_cfg = Config {
            tracer: tracer.clone(),
            ..plain
        };
        let traced = mine(&graphs, &traced_cfg);
        // Tracing must never change what is mined.
        assert_eq!(baseline.len(), traced.len());
        let c = tracer.counters();
        let visited = c.get("mine.patterns_visited");
        assert!(visited > 0);
        assert_eq!(
            visited,
            c.get("mine.expanded")
                + c.get("mine.subtree_skipped")
                + c.get("mine.stopped_max_nodes"),
            "visited-pattern identity violated: {c:?}"
        );
    }

    #[test]
    fn tight_budget_traces_exhaustion() {
        use gpa_trace::CounterTracer;
        let graphs = graphs_of(&[RUNNING_EXAMPLE, RUNNING_EXAMPLE]);
        let tracer = std::sync::Arc::new(CounterTracer::new());
        let config = Config {
            min_support: 2,
            support: Support::Embeddings,
            max_nodes: 8,
            max_patterns: 2,
            tracer: tracer.clone(),
            ..Config::default()
        };
        let _ = mine(&graphs, &config);
        assert_eq!(tracer.counters().get("mine.budget_exhausted"), 1);
    }

    #[test]
    fn min_support_three_matches_brute_force_disjoint_count() {
        // Three disjoint occurrences of ldr→sub in one block, arranged so
        // the pattern also has overlapping extra embeddings. Mining with
        // min_support = 3 must agree with the brute-force maximum
        // disjoint-embedding count of every reported fragment.
        let graphs = graphs_of(&["ldr r3, [r1]!\nsub r2, r2, r3\n\
                                  ldr r3, [r1]!\nsub r2, r2, r3\n\
                                  ldr r3, [r1]!\nsub r2, r2, r3"]);
        let found = mine(
            &graphs,
            &Config {
                min_support: 3,
                support: Support::Embeddings,
                max_nodes: 4,
                ..Config::default()
            },
        );
        assert!(
            found.iter().any(|f| f.pattern.node_count() == 2),
            "three disjoint ldr→sub embeddings must survive min_support = 3"
        );
        for f in &found {
            // Brute force over all embedding subsets.
            let sets: Vec<Vec<u32>> = f.embeddings.iter().map(Embedding::sorted_nodes).collect();
            let n = sets.len();
            assert!(n <= 20, "test inputs stay brute-forceable");
            let mut best = 0usize;
            for mask in 0u32..(1 << n) {
                let idx: Vec<usize> = (0..n).filter(|&i| mask & (1 << i) != 0).collect();
                let ok = idx.iter().enumerate().all(|(a, &i)| {
                    idx[a + 1..]
                        .iter()
                        .all(|&j| !crate::mis::sorted_intersects(&sets[i], &sets[j]))
                });
                if ok {
                    best = best.max(idx.len());
                }
            }
            assert!(best >= 3, "reported fragment lacks 3 disjoint embeddings");
            assert_eq!(f.support, best, "support disagrees with brute force");
        }
    }

    #[test]
    fn support_beyond_the_old_64_set_width_is_counted_exactly() {
        // Seventy disjoint ldr→sub occurrences in one block: the support
        // gate sees 70 node sets per graph (past the pre-bitset 64-set
        // exact width), and the block's ~140 DFG nodes push node ids past
        // the inline NodeSet capacity of 128 — a real mining run over
        // spilled bitsets.
        let listing = "ldr r3, [r1]!\nsub r2, r2, r3\n".repeat(70);
        let graphs = graphs_of(&[&listing]);
        let found = mine(
            &graphs,
            &Config {
                min_support: 3,
                support: Support::Embeddings,
                max_nodes: 4,
                ..Config::default()
            },
        );
        // Several 2-node fragments are frequent (ldr→sub, plus the
        // 69-occurrence cross-pair dependences); ldr→sub is the one with
        // all 70 disjoint occurrences.
        let best = found
            .iter()
            .filter(|f| f.pattern.node_count() == 2)
            .map(|f| f.support)
            .max()
            .expect("the ldr→sub fragment must be frequent");
        assert_eq!(best, 70, "all 70 disjoint occurrences count");
    }

    #[test]
    fn support_is_antimonotone_along_results() {
        // Every reported fragment's parent prefix is also reported with
        // at least the same support: check global max support of size-k
        // fragments is non-increasing in k.
        let graphs = graphs_of(&[RUNNING_EXAMPLE, RUNNING_EXAMPLE]);
        let found = mine(
            &graphs,
            &Config {
                min_support: 2,
                support: Support::Embeddings,
                max_nodes: 8,
                ..Config::default()
            },
        );
        let mut max_by_size: std::collections::BTreeMap<usize, usize> = Default::default();
        for f in &found {
            let e = max_by_size.entry(f.pattern.node_count()).or_default();
            *e = (*e).max(f.support);
        }
        let sizes: Vec<_> = max_by_size.into_iter().collect();
        for w in sizes.windows(2) {
            assert!(w[0].1 >= w[1].1, "support not antimonotone: {sizes:?}");
        }
    }
}

#[cfg(test)]
mod parallel_tests {
    use super::*;
    use gpa_arm::parse::parse_listing;
    use gpa_cfg::Item;
    use gpa_dfg::{build_dfg_from_items, LabelMode};

    fn graphs_of(listings: &[&str]) -> Vec<InputGraph> {
        let dfgs: Vec<_> = listings
            .iter()
            .map(|asm| {
                let items: Vec<Item> = parse_listing(asm)
                    .unwrap()
                    .into_iter()
                    .map(Item::Insn)
                    .collect();
                build_dfg_from_items("bb", 0, &items, LabelMode::Exact)
            })
            .collect();
        InputGraph::from_dfgs(&dfgs).0
    }

    const BLOCK: &str = "ldr r3, [r1]!\n\
                         sub r2, r2, r3\n\
                         add r4, r2, #4\n\
                         ldr r3, [r1]!\n\
                         sub r2, r2, r3\n\
                         ldr r3, [r1]!\n\
                         add r4, r2, #4";

    #[test]
    fn parallel_matches_sequential() {
        let graphs = graphs_of(&[BLOCK, BLOCK, "mov r0, #1\nadd r1, r0, #2"]);
        let config = Config {
            min_support: 2,
            support: Support::Embeddings,
            max_nodes: 6,
            ..Config::default()
        };
        let sequential = mine(&graphs, &config);
        for threads in [1usize, 2, 4] {
            let parallel = mine_parallel(&graphs, &config, threads);
            assert_eq!(parallel.len(), sequential.len(), "threads={threads}");
            let key = |f: &Frequent| {
                (
                    format!("{:?}", f.pattern.tuples()),
                    f.support,
                    f.embeddings.len(),
                )
            };
            let mut a: Vec<_> = sequential.iter().map(key).collect();
            let mut b: Vec<_> = parallel.iter().map(key).collect();
            a.sort();
            b.sort();
            assert_eq!(a, b, "threads={threads}");
        }
    }

    #[test]
    fn partition_union_matches_full_stream() {
        let graphs = graphs_of(&[BLOCK, BLOCK, "mov r0, #1\nadd r1, r0, #2"]);
        let config = Config {
            min_support: 2,
            support: Support::Embeddings,
            max_nodes: 6,
            ..Config::default()
        };
        let mut full = Vec::new();
        mine_streaming(&graphs, &config, &mut |f| {
            full.push(format!("{:?}", f.pattern.tuples()));
            GrowDecision::Continue
        });
        for stride in [1usize, 2, 3, 5] {
            let mut union = Vec::new();
            for worker in 0..stride {
                mine_streaming_partition(&graphs, &config, worker, stride, &mut |f| {
                    union.push(format!("{:?}", f.pattern.tuples()));
                    GrowDecision::Continue
                });
            }
            let mut a = full.clone();
            let mut b = union;
            a.sort();
            b.sort();
            assert_eq!(a, b, "stride={stride}");
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn partition_worker_out_of_range_panics() {
        let graphs = graphs_of(&[BLOCK]);
        mine_streaming_partition(&graphs, &Config::default(), 2, 2, &mut |_| {
            GrowDecision::Continue
        });
    }

    #[test]
    #[should_panic(expected = "at least one worker thread")]
    fn zero_threads_panics() {
        let graphs = graphs_of(&[BLOCK]);
        let _ = mine_parallel(&graphs, &Config::default(), 0);
    }
}
