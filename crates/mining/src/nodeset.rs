//! Compact bitsets over graph-node ids — the hot-path representation of
//! an embedding's node set.
//!
//! Basic blocks are small: essentially every embedding mined from real
//! code fits its node ids below [`INLINE_CAPACITY`]. [`NodeSet`] therefore
//! stores two inline `u64` words (no heap allocation, 16 bytes, trivially
//! copyable) and spills to a boxed word slice only when a node id ≥ 128
//! is inserted. Membership is a bit probe, overlap detection a word-wise
//! `AND` with early exit — the operations the collision-graph and
//! MIS inner loops of `crate::mis` are built from.
//!
//! Equality and hashing are representation-independent: a spilled set
//! whose high words are all zero equals the inline set with the same low
//! bits.

use std::hash::{Hash, Hasher};

/// Number of inline words.
const INLINE_WORDS: usize = 2;

/// Largest node-id count covered without heap allocation: ids `0..128`.
pub const INLINE_CAPACITY: u32 = (INLINE_WORDS as u32) * 64;

#[derive(Clone, Debug)]
enum Repr {
    /// Bits for ids `0..128`.
    Inline([u64; INLINE_WORDS]),
    /// Bits for ids `0..64·len` — only reached via ids ≥ 128.
    Spilled(Box<[u64]>),
}

/// A set of `u32` node ids as a bitset: inline up to ids < 128, spilled
/// beyond.
///
/// # Examples
///
/// ```
/// use gpa_mining::nodeset::NodeSet;
///
/// let a: NodeSet = [1u32, 5, 130].into_iter().collect();
/// let b: NodeSet = [5u32, 9].into_iter().collect();
/// assert!(a.contains(130));
/// assert!(a.intersects(&b));
/// assert_eq!(a.iter().collect::<Vec<_>>(), vec![1, 5, 130]);
/// ```
#[derive(Clone, Debug, Default)]
pub struct NodeSet {
    repr: Repr,
}

impl Default for Repr {
    fn default() -> Repr {
        Repr::Inline([0; INLINE_WORDS])
    }
}

impl NodeSet {
    /// The empty set.
    pub fn new() -> NodeSet {
        NodeSet::default()
    }

    fn words(&self) -> &[u64] {
        match &self.repr {
            Repr::Inline(w) => w,
            Repr::Spilled(w) => w,
        }
    }

    /// The backing words, least-significant first (id `i` lives in word
    /// `i / 64`, bit `i % 64`). Exposed so callers building other masks
    /// (e.g. the convexity check's fragment mask) can copy words instead
    /// of re-setting bits one by one.
    pub fn as_words(&self) -> &[u64] {
        self.words()
    }

    /// Inserts an id; returns whether it was newly added.
    pub fn insert(&mut self, id: u32) -> bool {
        let word = (id / 64) as usize;
        let bit = 1u64 << (id % 64);
        let words: &mut [u64] = match &mut self.repr {
            Repr::Inline(w) if word < INLINE_WORDS => w,
            Repr::Inline(w) => {
                // First id beyond the inline range: spill, with a little
                // headroom so runs of growing ids do not reallocate per
                // insert.
                let mut spilled = vec![0u64; (word + 1).next_power_of_two()];
                spilled[..INLINE_WORDS].copy_from_slice(w);
                self.repr = Repr::Spilled(spilled.into_boxed_slice());
                match &mut self.repr {
                    Repr::Spilled(w) => w,
                    Repr::Inline(_) => unreachable!(),
                }
            }
            Repr::Spilled(w) if word < w.len() => w,
            Repr::Spilled(w) => {
                let mut grown = vec![0u64; (word + 1).next_power_of_two()];
                grown[..w.len()].copy_from_slice(w);
                self.repr = Repr::Spilled(grown.into_boxed_slice());
                match &mut self.repr {
                    Repr::Spilled(w) => w,
                    Repr::Inline(_) => unreachable!(),
                }
            }
        };
        let fresh = words[word] & bit == 0;
        words[word] |= bit;
        fresh
    }

    /// Whether the id is in the set — a single bit probe.
    pub fn contains(&self, id: u32) -> bool {
        let word = (id / 64) as usize;
        let words = self.words();
        word < words.len() && words[word] & (1 << (id % 64)) != 0
    }

    /// Whether the two sets share an element: word-wise `AND` with early
    /// exit, the kernel of collision-graph construction.
    pub fn intersects(&self, other: &NodeSet) -> bool {
        let (a, b) = (self.words(), other.words());
        let n = a.len().min(b.len());
        (0..n).any(|i| a[i] & b[i] != 0)
    }

    /// In-place union.
    pub fn union_with(&mut self, other: &NodeSet) {
        let theirs = other.words();
        // Ensure capacity for the highest significant word of `other`.
        if let Some(top) = (0..theirs.len()).rev().find(|&i| theirs[i] != 0) {
            if top >= self.words().len() {
                self.insert((top as u32) * 64);
                // The bit at top*64 may not belong to the union; clear it
                // unless `other` (or we) actually carry it.
                if theirs[top] & 1 == 0 {
                    match &mut self.repr {
                        Repr::Spilled(w) => w[top] &= !1,
                        Repr::Inline(_) => unreachable!("top >= inline len forced a spill"),
                    }
                }
            }
        }
        match &mut self.repr {
            Repr::Inline(w) => {
                for (i, word) in theirs.iter().enumerate().take(INLINE_WORDS) {
                    w[i] |= word;
                }
            }
            Repr::Spilled(w) => {
                for (i, word) in theirs.iter().enumerate() {
                    w[i] |= word;
                }
            }
        }
    }

    /// Number of elements (popcount).
    pub fn len(&self) -> usize {
        self.words().iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words().iter().all(|&w| w == 0)
    }

    /// Iterates the ids in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.words().iter().enumerate().flat_map(|(wi, &w)| {
            std::iter::successors(if w == 0 { None } else { Some(w) }, |&rest| {
                let rest = rest & (rest - 1);
                if rest == 0 {
                    None
                } else {
                    Some(rest)
                }
            })
            .map(move |rest| (wi as u32) * 64 + rest.trailing_zeros())
        })
    }

    /// The elements as a sorted vector.
    pub fn to_sorted_vec(&self) -> Vec<u32> {
        self.iter().collect()
    }

    /// Index of the word past the last nonzero one — the significant
    /// prefix equality and hashing are defined over.
    fn significant_len(&self) -> usize {
        let words = self.words();
        words
            .iter()
            .rposition(|&w| w != 0)
            .map(|i| i + 1)
            .unwrap_or(0)
    }
}

impl PartialEq for NodeSet {
    fn eq(&self, other: &NodeSet) -> bool {
        let n = self.significant_len();
        n == other.significant_len() && self.words()[..n] == other.words()[..n]
    }
}

impl Eq for NodeSet {}

impl Hash for NodeSet {
    fn hash<H: Hasher>(&self, state: &mut H) {
        let n = self.significant_len();
        state.write_usize(n);
        for &w in &self.words()[..n] {
            state.write_u64(w);
        }
    }
}

impl FromIterator<u32> for NodeSet {
    fn from_iter<I: IntoIterator<Item = u32>>(iter: I) -> NodeSet {
        let mut set = NodeSet::new();
        for id in iter {
            set.insert(id);
        }
        set
    }
}

impl From<&[u32]> for NodeSet {
    fn from(ids: &[u32]) -> NodeSet {
        ids.iter().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(set: &NodeSet) -> u64 {
        let mut h = DefaultHasher::new();
        set.hash(&mut h);
        h.finish()
    }

    #[test]
    fn insert_contains_and_iter_order() {
        let mut s = NodeSet::new();
        assert!(s.is_empty());
        assert!(s.insert(7));
        assert!(s.insert(0));
        assert!(s.insert(127));
        assert!(!s.insert(7));
        assert!(s.contains(0) && s.contains(7) && s.contains(127));
        assert!(!s.contains(1) && !s.contains(128) && !s.contains(4000));
        assert_eq!(s.to_sorted_vec(), vec![0, 7, 127]);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn spill_preserves_low_bits_and_equality() {
        let mut s: NodeSet = [3u32, 64].into_iter().collect();
        assert!(matches!(s.repr, Repr::Inline(_)));
        s.insert(128);
        assert!(matches!(s.repr, Repr::Spilled(_)));
        assert!(s.contains(3) && s.contains(64) && s.contains(128));
        assert_eq!(s.to_sorted_vec(), vec![3, 64, 128]);
        // Growing far beyond the first spill still works.
        s.insert(1000);
        assert!(s.contains(1000) && s.contains(3));
        assert_eq!(s.len(), 4);
    }

    #[test]
    fn equality_and_hash_are_repr_independent() {
        let inline: NodeSet = [1u32, 90].into_iter().collect();
        let mut spilled: NodeSet = [1u32, 90].into_iter().collect();
        spilled.insert(300);
        // Not equal while the high bit is set…
        assert_ne!(inline, spilled);
        // …but a spilled set with only low bits equals the inline one.
        let low_only = match &spilled.repr {
            Repr::Spilled(w) => {
                let mut words = w.to_vec();
                for word in words.iter_mut().skip(INLINE_WORDS) {
                    *word = 0;
                }
                NodeSet {
                    repr: Repr::Spilled(words.into_boxed_slice()),
                }
            }
            Repr::Inline(_) => unreachable!(),
        };
        assert_eq!(inline, low_only);
        assert_eq!(hash_of(&inline), hash_of(&low_only));
    }

    #[test]
    fn intersects_matches_element_overlap() {
        let a: NodeSet = [1u32, 65, 129].into_iter().collect();
        let b: NodeSet = [2u32, 66, 129].into_iter().collect();
        let c: NodeSet = [2u32, 66, 130].into_iter().collect();
        assert!(a.intersects(&b));
        assert!(b.intersects(&a));
        assert!(!a.intersects(&c));
        assert!(b.intersects(&c));
        assert!(!NodeSet::new().intersects(&a));
    }

    #[test]
    fn union_with_covers_mixed_reprs() {
        let mut a: NodeSet = [1u32, 64].into_iter().collect();
        let b: NodeSet = [2u32, 200].into_iter().collect();
        a.union_with(&b);
        assert_eq!(a.to_sorted_vec(), vec![1, 2, 64, 200]);
        let mut c: NodeSet = [200u32].into_iter().collect();
        let d: NodeSet = [3u32].into_iter().collect();
        c.union_with(&d);
        assert_eq!(c.to_sorted_vec(), vec![3, 200]);
        // Union with a spilled-but-low-bits-only set never grows repr.
        let mut e: NodeSet = [5u32].into_iter().collect();
        let mut low = NodeSet::new();
        low.insert(300);
        let _ = low; // spilled scratch, unused
        e.union_with(&NodeSet::from(&[6u32][..]));
        assert_eq!(e.to_sorted_vec(), vec![5, 6]);
    }
}
