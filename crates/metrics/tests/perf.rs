//! End-to-end checks of the `gpa perf` harness: the acceptance criteria
//! from the issue (deterministic section byte-identical across runs and
//! `--jobs` settings; an injected compression regression trips the gate).

use gpa::json::Json;
use gpa::{Method, ValidateLevel};
use gpa_metrics::{compare, run_perf, PerfConfig};

/// A small two-kernel, two-method configuration that keeps the test fast.
fn small_config(jobs: usize) -> PerfConfig {
    PerfConfig {
        methods: vec![Method::Sfx, Method::DgSpan],
        kernels: vec!["crc".into(), "sha".into()],
        jobs,
        validate: ValidateLevel::Off,
        ..PerfConfig::default()
    }
}

#[test]
fn deterministic_section_is_byte_identical_across_jobs_and_runs() {
    let serial = run_perf(&small_config(1)).unwrap();
    let parallel = run_perf(&small_config(4)).unwrap();
    let repeat = run_perf(&small_config(1)).unwrap();
    let expected = serial.to_json(false).to_string();
    assert_eq!(expected, parallel.to_json(false).to_string());
    assert_eq!(expected, repeat.to_json(false).to_string());
    // The measured section is extra — the deterministic prefix of the
    // full document is the same string.
    let full = serial.to_json(true).to_string();
    assert!(full.contains("\"measured\":"));
    assert!(!expected.contains("\"measured\":"));
}

#[test]
fn bench_document_round_trips_and_has_paper_shape() {
    let report = run_perf(&small_config(2)).unwrap();
    let doc = report.to_json(true);
    // Round-trips through the hand-rolled parser (parse ∘ to_string = id).
    assert_eq!(Json::parse(&doc.to_string()).unwrap(), doc);
    assert_eq!(
        doc.get("schema").and_then(Json::as_str),
        Some(gpa_metrics::BENCH_SCHEMA)
    );
    let kernels = doc.get("kernels").and_then(Json::as_arr).unwrap();
    assert_eq!(kernels.len(), 2);
    for kernel in kernels {
        let results = kernel.get("results").and_then(Json::as_arr).unwrap();
        assert_eq!(results.len(), 2);
        // The first method is its own baseline for the per-method delta.
        assert_eq!(
            results[0].get("delta_saved_words").and_then(Json::as_int),
            Some(0)
        );
        for r in results {
            assert!(r.get("savings_bp").and_then(Json::as_int).is_some());
        }
    }
    // Latency: one histogram per stage per method, with count == kernels.
    let latency = doc
        .get("measured")
        .and_then(|m| m.get("latency"))
        .and_then(Json::as_arr)
        .unwrap();
    assert_eq!(latency.len(), 2);
    for method in latency {
        let stages = method.get("stages").and_then(Json::as_arr).unwrap();
        assert_eq!(stages.len(), gpa::stage::STAGE_NAMES.len());
        for stage in stages {
            assert_eq!(stage.get("count").and_then(Json::as_int), Some(2));
            let p50 = stage.get("p50_ns").and_then(Json::as_int).unwrap();
            let p99 = stage.get("p99_ns").and_then(Json::as_int).unwrap();
            assert!(p50 <= p99, "p50 {p50} > p99 {p99}");
        }
    }
    // The markdown view carries the same story.
    let md = report.markdown();
    assert!(md.contains("| crc |"), "{md}");
    assert!(md.contains("**total**"), "{md}");
    assert!(md.contains("| sfx | mining |"), "{md}");
}

/// Adds `delta` to every `saved_words` field, anywhere in the document.
fn inflate_saved_words(doc: &mut Json, delta: i64) {
    match doc {
        Json::Obj(pairs) => {
            for (key, value) in pairs.iter_mut() {
                if key == "saved_words" {
                    if let Json::Int(v) = value {
                        *v += delta;
                    }
                } else {
                    inflate_saved_words(value, delta);
                }
            }
        }
        Json::Arr(items) => {
            for item in items.iter_mut() {
                inflate_saved_words(item, delta);
            }
        }
        _ => {}
    }
}

#[test]
fn injected_compression_regression_trips_the_gate() {
    let config = PerfConfig {
        methods: vec![Method::Sfx],
        kernels: vec!["crc".into()],
        jobs: 1,
        validate: ValidateLevel::Off,
        ..PerfConfig::default()
    };
    let current = run_perf(&config).unwrap().to_json(true);
    // Against itself: clean.
    let cmp = compare(&current, &current, 10).unwrap();
    assert!(!cmp.is_regression(), "{:?}", cmp.hard);
    // Against a baseline that claims more savings: hard regression.
    let mut inflated = current.clone();
    inflate_saved_words(&mut inflated, 5);
    let cmp = compare(&current, &inflated, 10).unwrap();
    assert!(cmp.is_regression());
    assert!(
        cmp.hard[0].contains("saved_words regressed"),
        "{:?}",
        cmp.hard
    );
}

#[test]
fn profile_mode_collects_a_span_tree() {
    let config = PerfConfig {
        methods: vec![Method::Sfx],
        kernels: vec!["crc".into()],
        jobs: 1,
        validate: ValidateLevel::Off,
        profile: true,
        ..PerfConfig::default()
    };
    let report = run_perf(&config).unwrap();
    let tree = report.profile.expect("profile requested");
    let sfx = tree.roots.get("sfx").expect("method root");
    let optimize = sfx.children.get("optimize").expect("optimize span");
    assert_eq!(optimize.count, 1, "one image, one optimize span");
    assert!(optimize.children.contains_key("round"));
    let rendered = tree.render();
    assert!(rendered.contains("optimize"), "{rendered}");
}
