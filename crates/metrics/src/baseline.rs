//! Baseline comparison: the regression gate behind `gpa perf --baseline`.
//!
//! Two `gpa-bench/1` documents are compared field by field. Compression
//! metrics live in the deterministic section, so any decrease is a real
//! regression of the optimizer — a **hard** finding. Latency figures come
//! from the `"measured"` section and are noisy, so they only become
//! **soft** findings when the drift exceeds both an absolute floor and a
//! relative tolerance.

use gpa::json::Json;

use crate::perf::BENCH_SCHEMA;

/// Ignore latency drift below this absolute floor (scheduler jitter on
/// sub-millisecond stages would otherwise trip any relative tolerance).
const LATENCY_FLOOR_NS: i64 = 200_000;

/// The latency percentiles the gate compares.
const GATED_PERCENTILES: [&str; 3] = ["p50_ns", "p90_ns", "p99_ns"];

/// The outcome of comparing a fresh run against a baseline.
#[derive(Clone, Debug, Default)]
pub struct Comparison {
    /// Compression regressions and structural mismatches (missing
    /// kernels or methods). Any entry here must fail the build.
    pub hard: Vec<String>,
    /// Latency regressions beyond tolerance. Reported, separate exit
    /// code, but not a build failure on their own.
    pub soft: Vec<String>,
    /// Non-gating observations (improvements, skipped sections).
    pub notes: Vec<String>,
}

impl Comparison {
    /// Whether the gate must fail the build.
    pub fn is_regression(&self) -> bool {
        !self.hard.is_empty()
    }

    /// Whether any latency drift exceeded the tolerance.
    pub fn has_soft(&self) -> bool {
        !self.soft.is_empty()
    }

    /// Renders every finding, hard first, one per line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for f in &self.hard {
            out.push_str(&format!("HARD  {f}\n"));
        }
        for f in &self.soft {
            out.push_str(&format!("soft  {f}\n"));
        }
        for f in &self.notes {
            out.push_str(&format!("note  {f}\n"));
        }
        out
    }
}

/// Compares a fresh `gpa-bench/1` document against a baseline one.
///
/// Every kernel × method of the *baseline* must still be present and
/// must not save fewer words; `tolerance_pct` bounds the allowed
/// relative latency growth of the gated percentiles (on top of a
/// 200µs absolute floor). New kernels or methods in `current` are fine.
///
/// # Errors
///
/// A message when either document is not a well-formed `gpa-bench/1`
/// report.
pub fn compare(current: &Json, baseline: &Json, tolerance_pct: u64) -> Result<Comparison, String> {
    check_schema(current, "current")?;
    check_schema(baseline, "baseline")?;
    let mut cmp = Comparison::default();
    compare_kernels(current, baseline, &mut cmp)?;
    compare_latency(current, baseline, tolerance_pct, &mut cmp);
    Ok(cmp)
}

fn check_schema(doc: &Json, which: &str) -> Result<(), String> {
    match doc.get("schema").and_then(Json::as_str) {
        Some(BENCH_SCHEMA) => Ok(()),
        other => Err(format!("{which}: unsupported bench schema {other:?}")),
    }
}

/// A required field of a bench document, with a path-shaped error.
fn int_field(doc: &Json, ctx: &str, key: &str) -> Result<i64, String> {
    doc.get(key)
        .and_then(Json::as_int)
        .ok_or_else(|| format!("{ctx}: missing integer field `{key}`"))
}

fn compare_kernels(current: &Json, baseline: &Json, cmp: &mut Comparison) -> Result<(), String> {
    let kernels = |doc: &'_ Json, which: &str| -> Result<Vec<Json>, String> {
        doc.get("kernels")
            .and_then(Json::as_arr)
            .map(<[Json]>::to_vec)
            .ok_or_else(|| format!("{which}: missing `kernels` array"))
    };
    let cur_kernels = kernels(current, "current")?;
    let base_kernels = kernels(baseline, "baseline")?;
    for base_kernel in &base_kernels {
        let name = base_kernel
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| "baseline: kernel without `name`".to_owned())?;
        let Some(cur_kernel) = cur_kernels
            .iter()
            .find(|k| k.get("name").and_then(Json::as_str) == Some(name))
        else {
            cmp.hard
                .push(format!("kernel `{name}` missing from current run"));
            continue;
        };
        let results = |kernel: &Json, which: &str| -> Result<Vec<Json>, String> {
            kernel
                .get("results")
                .and_then(Json::as_arr)
                .map(<[Json]>::to_vec)
                .ok_or_else(|| format!("{which}: kernel `{name}` without `results`"))
        };
        let cur_results = results(cur_kernel, "current")?;
        for base_result in results(base_kernel, "baseline")? {
            let method = base_result
                .get("method")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("baseline: `{name}` result without `method`"))?;
            let ctx = format!("{name}/{method}");
            let Some(cur_result) = cur_results
                .iter()
                .find(|r| r.get("method").and_then(Json::as_str) == Some(method))
            else {
                cmp.hard
                    .push(format!("{ctx}: method missing from current run"));
                continue;
            };
            let base_saved = int_field(&base_result, &ctx, "saved_words")?;
            let cur_saved = int_field(cur_result, &ctx, "saved_words")?;
            if cur_saved < base_saved {
                cmp.hard.push(format!(
                    "{ctx}: saved_words regressed {base_saved} -> {cur_saved}"
                ));
            } else if cur_saved > base_saved {
                cmp.notes.push(format!(
                    "{ctx}: saved_words improved {base_saved} -> {cur_saved}"
                ));
            }
        }
    }
    Ok(())
}

/// A `method × stage` percentile lookup over a document's
/// `measured.latency` array; `None` when the section is absent.
fn latency_index(doc: &Json) -> Option<Vec<(String, String, Json)>> {
    let latency = doc.get("measured")?.get("latency")?.as_arr()?;
    let mut index = Vec::new();
    for entry in latency {
        let method = entry.get("method")?.as_str()?.to_owned();
        for stage in entry.get("stages")?.as_arr()? {
            let name = stage.get("stage")?.as_str()?.to_owned();
            index.push((method.clone(), name, stage.clone()));
        }
    }
    Some(index)
}

fn compare_latency(current: &Json, baseline: &Json, tolerance_pct: u64, cmp: &mut Comparison) {
    let (Some(cur), Some(base)) = (latency_index(current), latency_index(baseline)) else {
        cmp.notes
            .push("latency comparison skipped: a `measured` section is absent".to_owned());
        return;
    };
    for (method, stage, base_stage) in &base {
        let Some((_, _, cur_stage)) = cur.iter().find(|(m, s, _)| m == method && s == stage) else {
            // Structure mismatches in the measured section are only notes:
            // the hard gate already covers the deterministic section.
            cmp.notes
                .push(format!("{method}/{stage}: no current latency sample"));
            continue;
        };
        for pct in GATED_PERCENTILES {
            let (Some(base_ns), Some(cur_ns)) = (
                base_stage.get(pct).and_then(Json::as_int),
                cur_stage.get(pct).and_then(Json::as_int),
            ) else {
                continue;
            };
            let beyond_floor = cur_ns > base_ns + LATENCY_FLOOR_NS;
            let beyond_tolerance =
                cur_ns.saturating_mul(100) > base_ns.saturating_mul(100 + tolerance_pct as i64);
            if beyond_floor && beyond_tolerance {
                cmp.soft.push(format!(
                    "{method}/{stage} {pct}: {base_ns}ns -> {cur_ns}ns (tolerance {tolerance_pct}%)"
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A minimal bench document with one kernel × one method.
    fn doc(saved: i64, p99: i64) -> Json {
        Json::parse(&format!(
            concat!(
                "{{\"schema\":\"gpa-bench/1\",\"methods\":[\"sfx\"],",
                "\"kernels\":[{{\"name\":\"crc\",\"instructions\":100,",
                "\"results\":[{{\"method\":\"sfx\",\"saved_words\":{saved}}}]}}],",
                "\"totals\":[],",
                "\"measured\":{{\"jobs\":1,\"wall_ns\":1,\"latency\":[",
                "{{\"method\":\"sfx\",\"stages\":[{{\"stage\":\"mining\",",
                "\"p50_ns\":10,\"p90_ns\":20,\"p99_ns\":{p99}}}]}}]}}}}"
            ),
            saved = saved,
            p99 = p99,
        ))
        .unwrap()
    }

    #[test]
    fn identical_documents_pass() {
        let a = doc(10, 1000);
        let cmp = compare(&a, &a, 10).unwrap();
        assert!(!cmp.is_regression());
        assert!(!cmp.has_soft());
        assert!(cmp.render().is_empty());
    }

    #[test]
    fn saved_words_decrease_is_hard() {
        let cmp = compare(&doc(8, 1000), &doc(10, 1000), 10).unwrap();
        assert!(cmp.is_regression());
        assert!(cmp.hard[0].contains("crc/sfx"), "{:?}", cmp.hard);
        assert!(cmp.render().contains("HARD"));
    }

    #[test]
    fn saved_words_increase_is_a_note() {
        let cmp = compare(&doc(12, 1000), &doc(10, 1000), 10).unwrap();
        assert!(!cmp.is_regression());
        assert!(cmp.notes[0].contains("improved"), "{:?}", cmp.notes);
    }

    #[test]
    fn missing_kernel_is_hard() {
        let mut current = doc(10, 1000);
        // Rename the kernel so the baseline's `crc` cannot be found.
        if let Json::Obj(pairs) = &mut current {
            for (key, value) in pairs.iter_mut() {
                if key == "kernels" {
                    *value = Json::Arr(vec![]);
                }
            }
        }
        let cmp = compare(&current, &doc(10, 1000), 10).unwrap();
        assert!(cmp.is_regression());
        assert!(cmp.hard[0].contains("missing"), "{:?}", cmp.hard);
    }

    #[test]
    fn latency_gate_needs_floor_and_tolerance() {
        // +50% but under the 200µs floor: ignored.
        let cmp = compare(&doc(10, 1500), &doc(10, 1000), 10).unwrap();
        assert!(!cmp.has_soft());
        // Over the floor and over the tolerance: soft finding.
        let cmp = compare(&doc(10, 2_000_000), &doc(10, 1_000_000), 10).unwrap();
        assert!(cmp.has_soft());
        assert!(!cmp.is_regression());
        assert!(cmp.soft[0].contains("p99_ns"), "{:?}", cmp.soft);
        // Over the floor but inside a generous tolerance: ignored.
        let cmp = compare(&doc(10, 2_000_000), &doc(10, 1_000_000), 150).unwrap();
        assert!(!cmp.has_soft());
    }

    #[test]
    fn schema_mismatch_is_an_error() {
        let bogus = Json::parse("{\"schema\":\"other/9\"}").unwrap();
        assert!(compare(&bogus, &doc(1, 1), 0).is_err());
        assert!(compare(&doc(1, 1), &bogus, 0).is_err());
    }
}
