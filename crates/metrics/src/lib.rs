//! `gpa-metrics` — paper-style result tables, latency histograms and
//! the regression-gated `gpa perf` benchmark harness.
//!
//! The paper's payoff is quantitative: Tables 1–3 report bytes saved,
//! fragments extracted and runtime per benchmark. This crate is the
//! layer that turns the toolchain's raw signal (per-image
//! [`gpa::Report`]s, [`gpa::StageTimings`], `gpa-trace` streams) into
//! comparable, regression-gated metrics:
//!
//! * [`run_perf`] runs the bundled minicc kernel corpus across the
//!   detection methods via the batch pipeline and produces a
//!   [`PerfReport`]: paper-shape compression metrics per image × method
//!   (original size, words saved, % savings in basis points, fragments,
//!   rounds, per-method deltas) plus per-stage latency distributions as
//!   log-bucketed [`gpa_trace::LogHistogram`]s with p50/p90/p99.
//! * [`PerfReport::to_json`] serializes the `gpa-bench/1` document: a
//!   *deterministic* section (depends only on inputs and method — byte
//!   identical across runs, machines and `--jobs` settings) followed by
//!   a trailing `"measured"` section holding the wall-clock figures.
//! * [`compare`] gates a fresh run against a committed baseline:
//!   compression regressions are *hard* findings (non-zero exit),
//!   latency drift beyond a tolerance is *soft* (reported, separate
//!   exit code).
//! * [`profile::spans_from_jsonl`] aggregates `gpa-trace/1` streams into
//!   a flamegraph-style [`gpa_trace::SpanTree`] (`gpa trace-profile`,
//!   `gpa perf --profile`).
//!
//! # Examples
//!
//! ```
//! use gpa_metrics::{run_perf, PerfConfig};
//!
//! let config = PerfConfig {
//!     kernels: vec!["crc".into()],
//!     methods: vec![gpa::Method::Sfx],
//!     validate: gpa::ValidateLevel::Off,
//!     ..PerfConfig::default()
//! };
//! let report = run_perf(&config)?;
//! assert_eq!(report.kernels.len(), 1);
//! assert!(report.to_json(true).get("measured").is_some());
//! # Ok::<(), String>(())
//! ```

#![warn(missing_docs)]

pub mod baseline;
pub mod perf;
pub mod profile;

pub use baseline::{compare, Comparison};
pub use perf::{run_perf, KernelResult, MethodLatency, PerfConfig, PerfReport, BENCH_SCHEMA};
