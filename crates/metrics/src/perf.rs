//! The `gpa perf` harness: corpus runs, the `gpa-bench/1` document and
//! the human markdown tables.

use std::time::Instant;

use gpa::json::Json;
use gpa::stage::STAGE_NAMES;
use gpa::{AliasLevel, Method, Report, RunConfig, ValidateLevel};
use gpa_minicc::Options;
use gpa_pipeline::{run_batch, BatchConfig, BatchInput};
use gpa_trace::{LogHistogram, SpanNode, SpanTree};

/// Version tag of the benchmark-report JSON schema.
pub const BENCH_SCHEMA: &str = "gpa-bench/1";

/// What `gpa perf` runs.
#[derive(Clone, Debug)]
pub struct PerfConfig {
    /// Detection methods to evaluate, in report order; the first one is
    /// the baseline the per-method deltas are computed against.
    pub methods: Vec<Method>,
    /// Bundled kernel names ([`gpa_minicc::programs::BENCHMARKS`] by
    /// default).
    pub kernels: Vec<String>,
    /// Worker threads per method batch; `0` means auto-detect. Never
    /// affects the deterministic section.
    pub jobs: usize,
    /// Compile the kernels with the instruction scheduler.
    pub schedule: bool,
    /// Validation level for the optimization runs.
    pub validate: ValidateLevel,
    /// Alias-analysis level for the optimization runs.
    pub alias: AliasLevel,
    /// Collect a hierarchical span profile alongside the metrics.
    pub profile: bool,
}

impl Default for PerfConfig {
    fn default() -> PerfConfig {
        PerfConfig {
            methods: vec![Method::Sfx, Method::DgSpan, Method::Edgar],
            kernels: gpa_minicc::programs::BENCHMARKS
                .iter()
                .map(|&s| s.to_owned())
                .collect(),
            jobs: 0,
            schedule: true,
            validate: ValidateLevel::Final,
            alias: AliasLevel::default(),
            profile: false,
        }
    }
}

/// One kernel's deterministic compression metrics.
#[derive(Clone, Debug)]
pub struct KernelResult {
    /// Kernel name.
    pub name: String,
    /// Instruction words before optimization.
    pub instructions: usize,
    /// Code-section size in words (instructions + literal pools).
    pub code_words: usize,
    /// Data-section size in bytes.
    pub data_bytes: usize,
    /// One report per configured method, in [`PerfConfig::methods`]
    /// order.
    pub results: Vec<(Method, Report)>,
}

/// Per-stage latency histograms of one method's corpus run.
#[derive(Clone, Debug)]
pub struct MethodLatency {
    /// The detection method.
    pub method: Method,
    /// One histogram per [`STAGE_NAMES`] entry, in that order; each
    /// image contributes one sample per stage.
    pub stages: Vec<(&'static str, LogHistogram)>,
}

/// The result of a [`run_perf`] invocation.
#[derive(Clone, Debug)]
pub struct PerfReport {
    /// Methods evaluated, in report order.
    pub methods: Vec<Method>,
    /// Per-kernel compression metrics (deterministic).
    pub kernels: Vec<KernelResult>,
    /// Worker threads the batches actually used (measured section).
    pub jobs: usize,
    /// End-to-end wall time of the whole harness run.
    pub wall_ns: u64,
    /// Per-method per-stage latency distributions.
    pub latency: Vec<MethodLatency>,
    /// Aggregated span profile, when [`PerfConfig::profile`] was set;
    /// one top-level node per method.
    pub profile: Option<SpanTree>,
}

/// Runs the corpus across every configured method and aggregates the
/// benchmark report.
///
/// Each method gets one `gpa batch` run over the compiled kernels (the
/// pipeline's worker pool and deterministic merge are reused wholesale),
/// so the deterministic section of the result is byte-identical for any
/// `jobs` setting.
///
/// # Errors
///
/// A message when a kernel fails to compile, a batch aborts, or any
/// image fails to optimize — the harness has no partial results.
pub fn run_perf(config: &PerfConfig) -> Result<PerfReport, String> {
    if config.methods.is_empty() {
        return Err("no methods selected".to_owned());
    }
    if config.kernels.is_empty() {
        return Err("no kernels selected".to_owned());
    }
    let opts = Options {
        schedule: config.schedule,
    };
    let mut images = Vec::new();
    for name in &config.kernels {
        let image = gpa_minicc::compile_benchmark(name, &opts)
            .map_err(|e| format!("kernel {name}: {e}"))?;
        images.push((name.clone(), image));
    }
    let start = Instant::now();
    let mut per_method: Vec<Vec<Report>> = Vec::new();
    let mut latency = Vec::new();
    let mut profile = config.profile.then(SpanTree::default);
    let mut jobs_used = 1;
    for &method in &config.methods {
        let trace_dir = profile.as_ref().map(|_| {
            std::env::temp_dir().join(format!(
                "gpa-perf-profile-{}-{}",
                std::process::id(),
                method.as_str()
            ))
        });
        if let Some(dir) = &trace_dir {
            let _ = std::fs::remove_dir_all(dir);
        }
        let batch = BatchConfig {
            jobs: config.jobs,
            method,
            run: RunConfig {
                validate: config.validate,
                alias: config.alias,
                // The front-end (decode + per-block DFG build) pool
                // shares the --jobs knob; it never changes the output,
                // only the dfg_build/decode latency in the measured
                // section (0 = auto falls back to one front worker per
                // batch worker).
                front_threads: config.jobs,
                ..RunConfig::default()
            },
            cache_dir: None,
            trace_dir: trace_dir.clone(),
            ..BatchConfig::default()
        };
        let inputs: Vec<BatchInput> = images
            .iter()
            .map(|(name, image)| BatchInput::loaded(name.clone(), image.clone()))
            .collect();
        let corpus = run_batch(&inputs, &batch)?;
        for entry in &corpus.images {
            if let Err(message) = &entry.outcome {
                return Err(format!("{} [{}]: {message}", entry.name, method.as_str()));
            }
        }
        jobs_used = corpus.jobs;
        let mut stages: Vec<(&'static str, LogHistogram)> = STAGE_NAMES
            .iter()
            .map(|&name| (name, LogHistogram::new()))
            .collect();
        for (entry, _) in corpus.successful() {
            for (i, (_, ns)) in entry.timings.stages().iter().enumerate() {
                stages[i].1.record(*ns);
            }
        }
        latency.push(MethodLatency { method, stages });
        per_method.push(
            corpus
                .successful()
                .map(|(_, report)| report.clone())
                .collect(),
        );
        if let (Some(tree), Some(dir)) = (&mut profile, &trace_dir) {
            tree.merge(&method_profile(method, dir)?);
            let _ = std::fs::remove_dir_all(dir);
        }
    }
    let kernels = images
        .iter()
        .enumerate()
        .map(|(i, (name, image))| {
            let results: Vec<(Method, Report)> = config
                .methods
                .iter()
                .zip(&per_method)
                .map(|(&method, reports)| (method, reports[i].clone()))
                .collect();
            KernelResult {
                name: name.clone(),
                instructions: results[0].1.initial_words,
                code_words: image.code_len(),
                data_bytes: image.data_bytes().len(),
                results,
            }
        })
        .collect();
    Ok(PerfReport {
        methods: config.methods.clone(),
        kernels,
        jobs: jobs_used,
        wall_ns: gpa_trace::saturating_ns(start.elapsed()),
        latency,
        profile,
    })
}

/// Aggregates one method's per-image trace streams into a profile
/// grafted under a single `<method>` root.
fn method_profile(method: Method, dir: &std::path::Path) -> Result<SpanTree, String> {
    let merged = crate::profile::spans_from_trace_dir(dir)?;
    let mut wrapped = SpanNode {
        count: 0,
        total_ns: 0,
        children: merged.roots.clone(),
    };
    for node in merged.roots.values() {
        wrapped.count += node.count;
        wrapped.total_ns += node.total_ns;
    }
    let mut tree = SpanTree::default();
    tree.roots.insert(method.as_str().to_owned(), wrapped);
    Ok(tree)
}

/// Basis points of savings: `saved * 10_000 / initial` in pure integer
/// arithmetic (0 for an empty program).
fn savings_bp(saved: i64, initial: usize) -> i64 {
    if initial == 0 {
        0
    } else {
        saved * 10_000 / initial as i64
    }
}

/// `12.34%` rendering of basis points.
fn fmt_bp(bp: i64) -> String {
    let sign = if bp < 0 { "-" } else { "" };
    let a = bp.abs();
    format!("{sign}{}.{:02}%", a / 100, a % 100)
}

impl PerfReport {
    /// Serializes the `gpa-bench/1` document.
    ///
    /// With `include_measured = false` the result is the *deterministic
    /// section only* — per-kernel, per-method compression metrics plus
    /// totals, a pure function of the kernel sources, the compiler and
    /// the optimizer. `include_measured = true` appends the trailing
    /// `"measured"` object (jobs, wall time, per-stage latency
    /// histograms/percentiles), which varies run to run.
    pub fn to_json(&self, include_measured: bool) -> Json {
        let kernels: Vec<Json> = self
            .kernels
            .iter()
            .map(|k| {
                let base_saved = k.results[0].1.saved_words();
                let results: Vec<Json> = k
                    .results
                    .iter()
                    .map(|(method, report)| {
                        let saved = report.saved_words();
                        Json::obj([
                            ("method", Json::from(method.as_str())),
                            ("final_words", Json::from(report.final_words)),
                            ("saved_words", Json::from(saved)),
                            (
                                "savings_bp",
                                Json::from(savings_bp(saved, report.initial_words)),
                            ),
                            ("fragments", Json::from(report.rounds.len())),
                            ("procedures", Json::from(report.procedure_count())),
                            ("cross_jumps", Json::from(report.cross_jump_count())),
                            ("rounds", Json::from(report.rounds.len())),
                            ("delta_saved_words", Json::from(saved - base_saved)),
                        ])
                    })
                    .collect();
                Json::obj([
                    ("name", Json::from(k.name.as_str())),
                    ("instructions", Json::from(k.instructions)),
                    ("code_words", Json::from(k.code_words)),
                    ("data_bytes", Json::from(k.data_bytes)),
                    ("results", Json::Arr(results)),
                ])
            })
            .collect();
        let totals: Vec<Json> = self
            .methods
            .iter()
            .enumerate()
            .map(|(mi, method)| {
                let (mut initial, mut fin, mut saved, mut fragments) = (0usize, 0usize, 0i64, 0);
                for k in &self.kernels {
                    let report = &k.results[mi].1;
                    initial += report.initial_words;
                    fin += report.final_words;
                    saved += report.saved_words();
                    fragments += report.rounds.len();
                }
                Json::obj([
                    ("method", Json::from(method.as_str())),
                    ("initial_words", Json::from(initial)),
                    ("final_words", Json::from(fin)),
                    ("saved_words", Json::from(saved)),
                    ("savings_bp", Json::from(savings_bp(saved, initial))),
                    ("fragments", Json::from(fragments)),
                ])
            })
            .collect();
        let mut doc = vec![
            ("schema".to_owned(), Json::from(BENCH_SCHEMA)),
            (
                "methods".to_owned(),
                Json::Arr(
                    self.methods
                        .iter()
                        .map(|m| Json::from(m.as_str()))
                        .collect(),
                ),
            ),
            ("kernels".to_owned(), Json::Arr(kernels)),
            ("totals".to_owned(), Json::Arr(totals)),
        ];
        if include_measured {
            let latency: Vec<Json> = self
                .latency
                .iter()
                .map(|m| {
                    let stages: Vec<Json> = m
                        .stages
                        .iter()
                        .map(|(stage, hist)| {
                            let buckets: Vec<Json> = hist
                                .buckets()
                                .map(|(low, n)| Json::Arr(vec![Json::from(low), Json::from(n)]))
                                .collect();
                            Json::obj([
                                ("stage", Json::from(*stage)),
                                ("count", Json::from(hist.count())),
                                ("sum_ns", Json::from(hist.sum_ns())),
                                ("min_ns", Json::from(hist.min_ns())),
                                ("max_ns", Json::from(hist.max_ns())),
                                ("p50_ns", Json::from(hist.percentile(50))),
                                ("p90_ns", Json::from(hist.percentile(90))),
                                ("p99_ns", Json::from(hist.percentile(99))),
                                ("buckets", Json::Arr(buckets)),
                            ])
                        })
                        .collect();
                    Json::obj([
                        ("method", Json::from(m.method.as_str())),
                        ("stages", Json::Arr(stages)),
                    ])
                })
                .collect();
            doc.push((
                "measured".to_owned(),
                Json::obj([
                    ("jobs", Json::from(self.jobs)),
                    ("wall_ns", Json::from(self.wall_ns)),
                    ("latency", Json::Arr(latency)),
                ]),
            ));
        }
        Json::Obj(doc)
    }

    /// Renders the human-facing markdown: the Table 1-shape compression
    /// table plus a per-stage latency table.
    pub fn markdown(&self) -> String {
        let mut out = String::from("## Compression (Table 1 shape)\n\n");
        out.push_str("| program | insns |");
        for m in &self.methods {
            out.push_str(&format!(" {m} saved | {m} % | {m} frags |"));
        }
        out.push('\n');
        out.push_str("|---|---:|");
        for _ in &self.methods {
            out.push_str("---:|---:|---:|");
        }
        out.push('\n');
        for k in &self.kernels {
            out.push_str(&format!("| {} | {} |", k.name, k.instructions));
            for (_, report) in &k.results {
                out.push_str(&format!(
                    " {} | {} | {} |",
                    report.saved_words(),
                    fmt_bp(savings_bp(report.saved_words(), report.initial_words)),
                    report.rounds.len()
                ));
            }
            out.push('\n');
        }
        // Totals row.
        let initial: usize = self.kernels.iter().map(|k| k.instructions).sum();
        out.push_str(&format!("| **total** | {initial} |"));
        for mi in 0..self.methods.len() {
            let saved: i64 = self
                .kernels
                .iter()
                .map(|k| k.results[mi].1.saved_words())
                .sum();
            let fragments: usize = self
                .kernels
                .iter()
                .map(|k| k.results[mi].1.rounds.len())
                .sum();
            out.push_str(&format!(
                " **{saved}** | {} | {fragments} |",
                fmt_bp(savings_bp(saved, initial))
            ));
        }
        out.push('\n');
        out.push_str("\n## Latency (measured)\n\n");
        out.push_str("| method | stage | samples | p50 | p90 | p99 | max | total |\n");
        out.push_str("|---|---|---:|---:|---:|---:|---:|---:|\n");
        for m in &self.latency {
            for (stage, hist) in &m.stages {
                if hist.count() == 0 {
                    continue;
                }
                out.push_str(&format!(
                    "| {} | {stage} | {} | {} | {} | {} | {} | {} |\n",
                    m.method.as_str(),
                    hist.count(),
                    fmt_us(hist.percentile(50)),
                    fmt_us(hist.percentile(90)),
                    fmt_us(hist.percentile(99)),
                    fmt_us(hist.max_ns()),
                    fmt_us(hist.sum_ns()),
                ));
            }
        }
        out
    }
}

/// Microsecond rendering with one decimal, for the latency table.
fn fmt_us(ns: u64) -> String {
    format!("{}.{}us", ns / 1_000, (ns % 1_000) / 100)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn savings_bp_is_integer_exact() {
        assert_eq!(savings_bp(25, 1000), 250); // 2.5%
        assert_eq!(savings_bp(0, 1000), 0);
        assert_eq!(savings_bp(-10, 100), -1000);
        assert_eq!(savings_bp(5, 0), 0);
    }

    #[test]
    fn bp_formatting() {
        assert_eq!(fmt_bp(250), "2.50%");
        assert_eq!(fmt_bp(9), "0.09%");
        assert_eq!(fmt_bp(-1234), "-12.34%");
        assert_eq!(fmt_bp(0), "0.00%");
    }

    #[test]
    fn empty_configs_are_rejected() {
        let no_methods = PerfConfig {
            methods: vec![],
            ..PerfConfig::default()
        };
        assert!(run_perf(&no_methods).is_err());
        let no_kernels = PerfConfig {
            kernels: vec![],
            ..PerfConfig::default()
        };
        assert!(run_perf(&no_kernels).is_err());
        let bad_kernel = PerfConfig {
            kernels: vec!["no-such-kernel".into()],
            ..PerfConfig::default()
        };
        assert!(run_perf(&bad_kernel).is_err());
    }
}
