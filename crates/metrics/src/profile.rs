//! Aggregating `gpa-trace/1` streams into span profiles.
//!
//! The optimizer emits `span.enter` / `span.exit` events as ordinary
//! trace lines (see `gpa_trace::span`); this module replays those lines
//! through a [`SpanBuilder`] to rebuild the hierarchy, and merges many
//! streams (one per image) into a single flamegraph-style [`SpanTree`].

use std::path::{Path, PathBuf};

use gpa::json::Json;
use gpa_trace::{SpanBuilder, SpanTree, SPAN_ENTER, SPAN_EXIT};

/// Aggregates the span events of one `gpa-trace/1` JSONL stream.
///
/// Non-span events are skipped; blank lines are ignored. Malformed
/// streams are tolerated the way [`SpanBuilder`] tolerates them (orphan
/// exits dropped, unclosed enters discarded).
///
/// # Errors
///
/// A message naming the first line that is not valid JSON or is a span
/// event missing its `name` / `dur_ns` fields.
pub fn spans_from_jsonl(text: &str) -> Result<SpanTree, String> {
    let mut builder = SpanBuilder::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let doc = Json::parse(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        match doc.get("ev").and_then(Json::as_str) {
            Some(SPAN_ENTER) => {
                let name = doc
                    .get("name")
                    .and_then(Json::as_str)
                    .ok_or_else(|| format!("line {}: span.enter without name", i + 1))?;
                builder.enter(name);
            }
            Some(SPAN_EXIT) => {
                let name = doc
                    .get("name")
                    .and_then(Json::as_str)
                    .ok_or_else(|| format!("line {}: span.exit without name", i + 1))?;
                let dur_ns = doc
                    .get("dur_ns")
                    .and_then(Json::as_int)
                    .and_then(|v| u64::try_from(v).ok())
                    .ok_or_else(|| format!("line {}: span.exit without dur_ns", i + 1))?;
                builder.exit(name, dur_ns);
            }
            _ => {}
        }
    }
    Ok(builder.finish())
}

/// Reads each file and merges the per-stream profiles into one tree.
///
/// # Errors
///
/// A message naming the unreadable or malformed file.
pub fn spans_from_files(paths: &[PathBuf]) -> Result<SpanTree, String> {
    let mut tree = SpanTree::default();
    for path in paths {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        let one = spans_from_jsonl(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        tree.merge(&one);
    }
    Ok(tree)
}

/// Merges every `*.jsonl` file of a batch trace directory, in byte-wise
/// name order (matching how `gpa batch` numbers them).
///
/// # Errors
///
/// A message when the directory or any stream cannot be read.
pub fn spans_from_trace_dir(dir: &Path) -> Result<SpanTree, String> {
    let mut paths: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("{}: {e}", dir.display()))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "jsonl"))
        .collect();
    paths.sort();
    spans_from_files(&paths)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replays_span_events_and_skips_the_rest() {
        let text = concat!(
            "{\"schema\":\"gpa-trace/1\",\"ev\":\"trace_begin\"}\n",
            "{\"ev\":\"span.enter\",\"at_ns\":1,\"name\":\"optimize\"}\n",
            "{\"ev\":\"span.enter\",\"at_ns\":2,\"name\":\"round\"}\n",
            "{\"ev\":\"mine.start\",\"at_ns\":3,\"patterns\":7}\n",
            "{\"ev\":\"span.exit\",\"at_ns\":9,\"name\":\"round\",\"dur_ns\":7}\n",
            "{\"ev\":\"span.exit\",\"at_ns\":10,\"name\":\"optimize\",\"dur_ns\":9}\n",
            "{\"ev\":\"counters\",\"counters\":{\"span.enter\":2,\"span.exit\":2}}\n",
        );
        let tree = spans_from_jsonl(text).unwrap();
        let optimize = tree.roots.get("optimize").expect("optimize root");
        assert_eq!(optimize.total_ns, 9);
        assert_eq!(optimize.children["round"].total_ns, 7);
    }

    #[test]
    fn bad_json_names_the_line() {
        let err = spans_from_jsonl("{\"ev\":\"x\",\"at_ns\":1}\nnot json\n").unwrap_err();
        assert!(err.starts_with("line 2:"), "{err}");
    }

    #[test]
    fn span_exit_without_duration_is_an_error() {
        let err =
            spans_from_jsonl("{\"ev\":\"span.exit\",\"at_ns\":1,\"name\":\"x\"}\n").unwrap_err();
        assert!(err.contains("dur_ns"), "{err}");
    }

    #[test]
    fn missing_file_is_an_error() {
        assert!(spans_from_files(&[PathBuf::from("/definitely/not/here.jsonl")]).is_err());
    }
}
