//! Suffix-array and LCP-array construction.
//!
//! Prefix-doubling construction in `O(n log² n)` — comfortably fast for
//! instruction streams of a few thousand symbols — and Kasai's `O(n)` LCP
//! algorithm.

/// Builds the suffix array of `text`: the lexicographically sorted suffix
/// start positions.
///
/// # Examples
///
/// ```
/// use gpa_sfx::suffix_array;
///
/// // "banana" over small ints: b=1 a=0 n=2.
/// let text = [1, 0, 2, 0, 2, 0];
/// assert_eq!(suffix_array(&text), vec![5, 3, 1, 0, 4, 2]);
/// ```
pub fn suffix_array(text: &[u32]) -> Vec<usize> {
    let n = text.len();
    if n == 0 {
        return Vec::new();
    }
    let mut sa: Vec<usize> = (0..n).collect();
    let mut rank: Vec<i64> = text.iter().map(|&c| c as i64).collect();
    let mut tmp: Vec<i64> = vec![0; n];
    let mut k = 1usize;
    loop {
        let key = |i: usize| -> (i64, i64) {
            let second = if i + k < n { rank[i + k] } else { -1 };
            (rank[i], second)
        };
        sa.sort_unstable_by_key(|&a| key(a));
        tmp[sa[0]] = 0;
        for w in 1..n {
            tmp[sa[w]] = tmp[sa[w - 1]] + i64::from(key(sa[w - 1]) != key(sa[w]));
        }
        rank.copy_from_slice(&tmp);
        if rank[sa[n - 1]] as usize == n - 1 {
            break;
        }
        k *= 2;
    }
    sa
}

/// Builds the LCP array with Kasai's algorithm: `lcp[i]` is the length of
/// the longest common prefix of the suffixes at `sa[i - 1]` and `sa[i]`
/// (`lcp[0] == 0`).
///
/// # Panics
///
/// Panics if `sa` is not a permutation of `0..text.len()`.
pub fn lcp_array(text: &[u32], sa: &[usize]) -> Vec<usize> {
    let n = text.len();
    assert_eq!(sa.len(), n, "suffix array must cover the text");
    let mut rank = vec![0usize; n];
    for (i, &s) in sa.iter().enumerate() {
        rank[s] = i;
    }
    let mut lcp = vec![0usize; n];
    let mut h = 0usize;
    for i in 0..n {
        if rank[i] == 0 {
            h = 0;
            continue;
        }
        let j = sa[rank[i] - 1];
        while i + h < n && j + h < n && text[i + h] == text[j + h] {
            h += 1;
        }
        lcp[rank[i]] = h;
        h = h.saturating_sub(1);
    }
    lcp
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_suffix_array(text: &[u32]) -> Vec<usize> {
        let mut sa: Vec<usize> = (0..text.len()).collect();
        sa.sort_by(|&a, &b| text[a..].cmp(&text[b..]));
        sa
    }

    fn naive_lcp(a: &[u32], b: &[u32]) -> usize {
        a.iter().zip(b).take_while(|(x, y)| x == y).count()
    }

    #[test]
    fn banana() {
        let text = [1, 0, 2, 0, 2, 0];
        let sa = suffix_array(&text);
        assert_eq!(sa, naive_suffix_array(&text));
        let lcp = lcp_array(&text, &sa);
        // suffixes: a, ana, anana, banana, na, nana
        assert_eq!(lcp, vec![0, 1, 3, 0, 0, 2]);
    }

    #[test]
    fn matches_naive_on_random_inputs() {
        let mut state = 7u64;
        let mut rand = move || {
            state = state
                .wrapping_mul(2862933555777941757)
                .wrapping_add(3037000493);
            ((state >> 33) % 5) as u32
        };
        for n in [1usize, 2, 3, 10, 50, 200] {
            let text: Vec<u32> = (0..n).map(|_| rand()).collect();
            let sa = suffix_array(&text);
            assert_eq!(sa, naive_suffix_array(&text), "text={text:?}");
            let lcp = lcp_array(&text, &sa);
            for i in 1..n {
                assert_eq!(
                    lcp[i],
                    naive_lcp(&text[sa[i - 1]..], &text[sa[i]..]),
                    "lcp[{i}] for text={text:?}"
                );
            }
        }
    }

    #[test]
    fn empty_and_singleton() {
        assert!(suffix_array(&[]).is_empty());
        assert_eq!(suffix_array(&[9]), vec![0]);
        assert_eq!(lcp_array(&[9], &[0]), vec![0]);
    }

    #[test]
    fn all_equal_symbols() {
        let text = [3u32; 8];
        let sa = suffix_array(&text);
        assert_eq!(sa, vec![7, 6, 5, 4, 3, 2, 1, 0]);
        let lcp = lcp_array(&text, &sa);
        assert_eq!(lcp, vec![0, 1, 2, 3, 4, 5, 6, 7]);
    }
}
