//! The suffix-trie baseline ("SFX"): repeated-sequence detection over the
//! linear instruction stream, in the style of Fraser/Myers/Wendt and the
//! fingerprinting of Debray et al. — the approach the paper compares
//! against.
//!
//! Instructions are interned to symbols and the basic-block bodies are
//! concatenated with unique separators (so no repeat crosses a block
//! boundary, mirroring the fingerprint-per-block discipline). A suffix
//! array plus LCP array enumerates all maximal repeated factors; each
//! lcp-interval yields a [`RepeatCandidate`] with its occurrence
//! positions. The *same* cost model and extraction machinery as the
//! graph-based methods is applied by the `gpa` crate, keeping the
//! comparison apples-to-apples.
//!
//! # Examples
//!
//! ```
//! use gpa_sfx::repeated_factors;
//!
//! // Two blocks sharing the sequence [7, 8, 9].
//! let seqs = vec![vec![7, 8, 9, 1], vec![2, 7, 8, 9]];
//! let candidates = repeated_factors(&seqs, 2);
//! assert!(candidates
//!     .iter()
//!     .any(|c| c.len == 3 && c.occurrences.len() == 2));
//! ```

#![warn(missing_docs)]

pub mod suffix;

pub use suffix::{lcp_array, suffix_array};

/// A repeated factor of the instruction stream.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RepeatCandidate {
    /// Length of the repeated sequence (in instructions).
    pub len: usize,
    /// Occurrences as `(sequence index, start offset)`, sorted.
    pub occurrences: Vec<(usize, usize)>,
}

impl RepeatCandidate {
    /// Greedily selects a maximal set of non-overlapping occurrences
    /// (left to right) — the classical suffix-trie PA overlap rule.
    pub fn disjoint_occurrences(&self) -> Vec<(usize, usize)> {
        let mut chosen: Vec<(usize, usize)> = Vec::new();
        let mut last_end: Option<(usize, usize)> = None;
        for &(seq, start) in &self.occurrences {
            let ok = match last_end {
                Some((lseq, lend)) => seq != lseq || start >= lend,
                None => true,
            };
            if ok {
                chosen.push((seq, start));
                last_end = Some((seq, start + self.len));
            }
        }
        chosen
    }

    /// A prefix-truncated copy of this candidate (same occurrences,
    /// shorter length). Useful when a shorter factor scores better under
    /// a cost model.
    pub fn truncated(&self, len: usize) -> RepeatCandidate {
        assert!(len <= self.len);
        RepeatCandidate {
            len,
            occurrences: self.occurrences.clone(),
        }
    }
}

/// Enumerates all right-maximal repeated factors of length ≥ 2 occurring
/// in at least `min_occurrences` places, across a set of symbol sequences.
///
/// Every repeated factor's occurrence set equals the occurrence set of
/// one reported candidate with at least its length (right-maximality), so
/// nothing profitable is missed by only reporting the maximal ones.
pub fn repeated_factors(seqs: &[Vec<u32>], min_occurrences: usize) -> Vec<RepeatCandidate> {
    // Concatenate with unique separators above the symbol range.
    let max_sym = seqs
        .iter()
        .flat_map(|s| s.iter())
        .copied()
        .max()
        .unwrap_or(0);
    let mut text: Vec<u32> = Vec::new();
    // (sequence index, start offset) per text position.
    let mut origin: Vec<(usize, usize)> = Vec::new();
    for (sep, (si, s)) in (max_sym + 1..).zip(seqs.iter().enumerate()) {
        for (i, &sym) in s.iter().enumerate() {
            text.push(sym);
            origin.push((si, i));
        }
        text.push(sep);
        origin.push((usize::MAX, 0));
    }
    if text.is_empty() {
        return Vec::new();
    }
    let sa = suffix_array(&text);
    let lcp = lcp_array(&text, &sa);

    // Enumerate lcp-intervals with a stack (lcp-interval tree traversal).
    // Each interval (lcp value L ≥ 2, sa range [i..j]) is a right-maximal
    // repeat of length L with j - i + 1 occurrences.
    let mut out = Vec::new();
    let mut stack: Vec<(usize, usize)> = Vec::new(); // (lcp value, left boundary)
    #[allow(clippy::needless_range_loop)] // i doubles as the sentinel index past lcp's end
    for i in 1..=sa.len() {
        let l = if i < sa.len() { lcp[i] } else { 0 };
        let mut left = i - 1;
        while let Some(&(top_lcp, top_left)) = stack.last() {
            if top_lcp <= l {
                break;
            }
            stack.pop();
            if top_lcp >= 2 {
                report_interval(
                    &sa,
                    &origin,
                    top_left,
                    i - 1,
                    top_lcp,
                    min_occurrences,
                    &mut out,
                );
            }
            left = top_left;
        }
        if l >= 1 && stack.last().map(|&(t, _)| t < l).unwrap_or(true) {
            stack.push((l, left));
        }
    }
    out
}

fn report_interval(
    sa: &[usize],
    origin: &[(usize, usize)],
    left: usize,
    right: usize,
    len: usize,
    min_occurrences: usize,
    out: &mut Vec<RepeatCandidate>,
) {
    if right - left + 1 < min_occurrences {
        return;
    }
    let mut occurrences: Vec<(usize, usize)> = Vec::with_capacity(right - left + 1);
    for &pos in &sa[left..=right] {
        let (seq, offset) = origin[pos];
        // Unique separators never participate in a repeat of length ≥ 2.
        debug_assert_ne!(seq, usize::MAX);
        occurrences.push((seq, offset));
    }
    occurrences.sort_unstable();
    if occurrences.len() >= min_occurrences {
        out.push(RepeatCandidate { len, occurrences });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Naive repeat finder for cross-checking: occurrence sets of every
    /// repeated substring of length `len`.
    fn naive_repeats(seqs: &[Vec<u32>], len: usize) -> Vec<Vec<(usize, usize)>> {
        use std::collections::HashMap;
        let mut map: HashMap<&[u32], Vec<(usize, usize)>> = HashMap::new();
        for (si, s) in seqs.iter().enumerate() {
            if s.len() < len {
                continue;
            }
            for start in 0..=(s.len() - len) {
                map.entry(&s[start..start + len])
                    .or_default()
                    .push((si, start));
            }
        }
        map.into_values().filter(|v| v.len() >= 2).collect()
    }

    #[test]
    fn finds_cross_block_repeat() {
        let seqs = vec![vec![1, 2, 3, 4], vec![9, 1, 2, 3]];
        let cands = repeated_factors(&seqs, 2);
        let c = cands
            .iter()
            .find(|c| c.len == 3)
            .expect("the length-3 repeat [1,2,3]");
        assert_eq!(c.occurrences, vec![(0, 0), (1, 1)]);
    }

    #[test]
    fn repeats_do_not_cross_blocks() {
        let seqs = vec![vec![1, 2], vec![2, 1]];
        let cands = repeated_factors(&seqs, 2);
        assert!(cands.is_empty(), "got {cands:?}");
    }

    #[test]
    fn within_block_repeat_and_overlap_rule() {
        // aaaa: factor "aa" occurs at 0,1,2; greedy disjoint = {0, 2}.
        let seqs = vec![vec![5, 5, 5, 5]];
        let cands = repeated_factors(&seqs, 2);
        let c = cands.iter().find(|c| c.len == 2).expect("aa repeat");
        assert_eq!(c.occurrences.len(), 3);
        assert_eq!(c.disjoint_occurrences(), vec![(0, 0), (0, 2)]);
    }

    #[test]
    fn right_maximality_covers_all_repeats() {
        // Every naive repeat's occurrence set must be exactly the
        // occurrence set of some reported candidate of ≥ its length.
        let mut state = 42u64;
        let mut rand = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) % 4) as u32
        };
        let seqs: Vec<Vec<u32>> = (0..4).map(|_| (0..40).map(|_| rand()).collect()).collect();
        let cands = repeated_factors(&seqs, 2);
        for len in 2..6 {
            for mut positions in naive_repeats(&seqs, len) {
                positions.sort_unstable();
                let covered = cands
                    .iter()
                    .any(|c| c.len >= len && c.occurrences == positions);
                assert!(
                    covered,
                    "naive repeat of len {len} at {positions:?} not covered"
                );
            }
        }
    }

    #[test]
    fn candidates_are_true_repeats() {
        let seqs = vec![vec![1, 2, 3, 1, 2, 4, 1, 2, 3], vec![3, 1, 2, 3, 9]];
        for c in repeated_factors(&seqs, 2) {
            let (s0, o0) = c.occurrences[0];
            let reference = &seqs[s0][o0..o0 + c.len];
            for &(s, o) in &c.occurrences[1..] {
                assert_eq!(&seqs[s][o..o + c.len], reference);
            }
        }
    }

    #[test]
    fn empty_input() {
        assert!(repeated_factors(&[], 2).is_empty());
        assert!(repeated_factors(&[vec![]], 2).is_empty());
        assert!(repeated_factors(&[vec![1]], 2).is_empty());
    }
}
