//! MiniC abstract syntax tree and types.

use std::fmt;

/// A MiniC type.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub enum Type {
    /// Placeholder before semantic analysis, and `void` return type.
    #[default]
    Void,
    /// 32-bit signed integer.
    Int,
    /// 8-bit unsigned character.
    Char,
    /// Pointer to another type.
    Ptr(Box<Type>),
    /// One-dimensional array with a compile-time length.
    Array(Box<Type>, usize),
    /// A function designator (used as a value it decays to a code address).
    Func,
}

impl Type {
    /// Size in bytes of a value of this type.
    pub fn size(&self) -> usize {
        match self {
            Type::Void => 0,
            Type::Int => 4,
            Type::Char => 1,
            Type::Ptr(_) | Type::Func => 4,
            Type::Array(elem, n) => elem.size() * n,
        }
    }

    /// The pointed-to / element type for pointers and arrays.
    pub fn pointee(&self) -> Option<&Type> {
        match self {
            Type::Ptr(t) | Type::Array(t, _) => Some(t),
            _ => None,
        }
    }

    /// Whether the type is `int` or `char` (usable in arithmetic).
    pub fn is_scalar_int(&self) -> bool {
        matches!(self, Type::Int | Type::Char)
    }

    /// Whether the type is a pointer or decays to one.
    pub fn is_pointer_like(&self) -> bool {
        matches!(self, Type::Ptr(_) | Type::Array(_, _) | Type::Func)
    }

    /// The type after array-to-pointer / function-to-pointer decay.
    pub fn decayed(&self) -> Type {
        match self {
            Type::Array(elem, _) => Type::Ptr(elem.clone()),
            other => other.clone(),
        }
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Void => write!(f, "void"),
            Type::Int => write!(f, "int"),
            Type::Char => write!(f, "char"),
            Type::Ptr(t) => write!(f, "{t}*"),
            Type::Array(t, n) => write!(f, "{t}[{n}]"),
            Type::Func => write!(f, "function"),
        }
    }
}

/// Binary operators.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BinOp {
    /// Addition (`+`), with pointer scaling when one side is a pointer.
    Add,
    /// Subtraction (`-`), including pointer difference.
    Sub,
    /// Multiplication (`*`).
    Mul,
    /// Division (`/`), lowered to a runtime call.
    Div,
    /// Remainder (`%`), lowered to a runtime call.
    Mod,
    /// Bitwise AND (`&`).
    BitAnd,
    /// Bitwise OR (`|`).
    BitOr,
    /// Bitwise XOR (`^`).
    BitXor,
    /// Left shift (`<<`).
    Shl,
    /// Arithmetic right shift (`>>`).
    Shr,
    /// Less than (`<`).
    Lt,
    /// Less or equal (`<=`).
    Le,
    /// Greater than (`>`).
    Gt,
    /// Greater or equal (`>=`).
    Ge,
    /// Equality (`==`).
    Eq,
    /// Inequality (`!=`).
    Ne,
    /// Short-circuit `&&`.
    LAnd,
    /// Short-circuit `||`.
    LOr,
}

impl BinOp {
    /// Whether the operator yields a boolean 0/1.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge | BinOp::Eq | BinOp::Ne
        )
    }
}

/// Unary operators.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Logical not (`!`), yields 0/1.
    Not,
    /// Bitwise complement (`~`).
    BitNot,
}

/// An expression with its source line and (post-sema) type.
#[derive(Clone, PartialEq, Debug)]
pub struct Expr {
    /// The expression node.
    pub kind: ExprKind,
    /// 1-based source line.
    pub line: u32,
    /// Filled in by semantic analysis; `Type::Void` before.
    pub ty: Type,
}

impl Expr {
    /// Creates an expression with a yet-unknown type.
    pub fn new(kind: ExprKind, line: u32) -> Expr {
        Expr {
            kind,
            line,
            ty: Type::Void,
        }
    }
}

/// Expression node kinds.
#[derive(Clone, PartialEq, Debug)]
pub enum ExprKind {
    /// Integer (or character) literal.
    Int(i64),
    /// String literal; decays to `char*`.
    Str(String),
    /// Variable or function reference.
    Var(String),
    /// Unary operation.
    Unary(UnOp, Box<Expr>),
    /// Binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// Simple assignment `lhs = rhs` (compound assignments are desugared by
    /// the parser).
    Assign(Box<Expr>, Box<Expr>),
    /// Pre-increment/-decrement (`delta` is +1 or -1); value is the new one.
    IncDec {
        /// The lvalue operand.
        target: Box<Expr>,
        /// +1 or -1.
        delta: i32,
        /// `true` for postfix (value is the old one).
        postfix: bool,
    },
    /// Function call; callee is a name or a pointer-valued expression.
    Call(Box<Expr>, Vec<Expr>),
    /// Array indexing `base[idx]`.
    Index(Box<Expr>, Box<Expr>),
    /// Pointer dereference `*e`.
    Deref(Box<Expr>),
    /// Address-of `&e`.
    AddrOf(Box<Expr>),
    /// Ternary conditional `c ? a : b`.
    Cond(Box<Expr>, Box<Expr>, Box<Expr>),
}

/// A statement.
#[derive(Clone, PartialEq, Debug)]
pub enum Stmt {
    /// `{ ... }`
    Block(Vec<Stmt>),
    /// A local declaration, possibly initialized.
    Decl {
        /// Variable name.
        name: String,
        /// Declared type.
        ty: Type,
        /// Optional initializer.
        init: Option<Expr>,
        /// Source line.
        line: u32,
    },
    /// An expression evaluated for effect.
    Expr(Expr),
    /// `if` with optional `else`.
    If {
        /// The condition.
        cond: Expr,
        /// The then-branch.
        then: Box<Stmt>,
        /// The optional else-branch.
        els: Option<Box<Stmt>>,
    },
    /// `while` loop.
    While {
        /// The loop condition.
        cond: Expr,
        /// The loop body.
        body: Box<Stmt>,
    },
    /// `do … while` loop.
    DoWhile {
        /// The loop body (runs at least once).
        body: Box<Stmt>,
        /// The post-iteration condition.
        cond: Expr,
    },
    /// `for` loop; all three headers optional.
    For {
        /// The initializer statement.
        init: Option<Box<Stmt>>,
        /// The continuation condition.
        cond: Option<Expr>,
        /// The per-iteration step expression.
        step: Option<Expr>,
        /// The loop body.
        body: Box<Stmt>,
    },
    /// `return`, optionally with a value.
    Return(Option<Expr>, u32),
    /// `break`.
    Break(u32),
    /// `continue`.
    Continue(u32),
}

/// A global variable initializer.
#[derive(Clone, PartialEq, Debug)]
pub enum GlobalInit {
    /// A scalar constant.
    Scalar(i64),
    /// A brace-enclosed list of constants (for arrays; zero-padded).
    List(Vec<i64>),
    /// A string literal (for `char[]` / `char*`).
    Str(String),
}

/// A global variable definition.
#[derive(Clone, PartialEq, Debug)]
pub struct Global {
    /// Variable name.
    pub name: String,
    /// Declared type.
    pub ty: Type,
    /// Optional initializer (zero otherwise).
    pub init: Option<GlobalInit>,
    /// Source line.
    pub line: u32,
}

/// A function definition.
#[derive(Clone, PartialEq, Debug)]
pub struct Function {
    /// Function name.
    pub name: String,
    /// Return type.
    pub ret: Type,
    /// Parameters in order.
    pub params: Vec<(String, Type)>,
    /// The body block.
    pub body: Stmt,
    /// Source line of the definition.
    pub line: u32,
}

/// A parsed translation unit.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct Unit {
    /// Global variables in definition order.
    pub globals: Vec<Global>,
    /// Functions in definition order.
    pub functions: Vec<Function>,
}

impl Unit {
    /// Looks up a function by name.
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.functions.iter().find(|f| f.name == name)
    }

    /// Looks up a global by name.
    pub fn global(&self, name: &str) -> Option<&Global> {
        self.globals.iter().find(|g| g.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_sizes() {
        assert_eq!(Type::Int.size(), 4);
        assert_eq!(Type::Char.size(), 1);
        assert_eq!(Type::Ptr(Box::new(Type::Char)).size(), 4);
        assert_eq!(Type::Array(Box::new(Type::Int), 10).size(), 40);
        assert_eq!(Type::Void.size(), 0);
    }

    #[test]
    fn decay() {
        let arr = Type::Array(Box::new(Type::Int), 3);
        assert_eq!(arr.decayed(), Type::Ptr(Box::new(Type::Int)));
        assert_eq!(Type::Int.decayed(), Type::Int);
        assert!(arr.is_pointer_like());
        assert!(!Type::Int.is_pointer_like());
    }

    #[test]
    fn display() {
        assert_eq!(Type::Ptr(Box::new(Type::Char)).to_string(), "char*");
        assert_eq!(Type::Array(Box::new(Type::Int), 4).to_string(), "int[4]");
    }
}
