//! MiniC: a small C-like compiler targeting the ARM subset.
//!
//! This crate stands in for the paper's `gcc -Os` + dietlibc toolchain. It
//! compiles MiniC source — a C subset with ints, chars, pointers, arrays,
//! function pointers, globals and string literals — to ARM machine code,
//! links it statically against a bundled runtime library (`minilibc`), and
//! produces a [`gpa_image::Image`] with interwoven literal pools, exactly
//! the shape of binary the procedural-abstraction pipeline consumes.
//!
//! Two properties of the generated code matter for the reproduction:
//!
//! * **Template duplication** — the code generator works from fixed
//!   templates (the paper: "space-wasting code duplications … mainly caused
//!   by the compiler's code generation templates"), so similar source
//!   constructs yield similar instruction sequences.
//! * **Instruction reordering** — a list-scheduling pass reorders
//!   independent instructions within basic blocks (hoisting loads, exactly
//!   like the rijndael schedules described in the paper), so equal
//!   *computations* frequently appear with different instruction *orders* —
//!   visible to graph-based PA, invisible to suffix-trie PA. The pass can
//!   be disabled via [`Options::schedule`] for the ablation bench.
//!
//! The eight MiBench kernels used in the paper's evaluation are bundled as
//! MiniC sources; see [`programs`].
//!
//! # Examples
//!
//! ```
//! use gpa_minicc::{compile, Options};
//!
//! let image = compile("int main() { return 7; }", &Options::default())?;
//! let outcome = gpa_emu::Machine::new(&image).run(100_000)?;
//! assert_eq!(outcome.exit_code, 7);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod asm;
pub mod ast;
pub mod codegen;
pub mod lexer;
pub mod link;
pub mod parser;
pub mod programs;
pub mod runtime;
pub mod sched;
pub mod sema;

use std::fmt;

/// Compilation options.
#[derive(Clone, Debug)]
pub struct Options {
    /// Run the list-scheduling pass that reorders independent instructions
    /// within basic blocks (on by default, mirroring `-Os` scheduling).
    pub schedule: bool,
}

impl Default for Options {
    fn default() -> Options {
        Options { schedule: true }
    }
}

/// Any error produced while compiling MiniC source.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CompileError {
    /// Pipeline stage that failed.
    pub stage: &'static str,
    /// Human-readable message, usually with a line number.
    pub message: String,
}

impl CompileError {
    pub(crate) fn new(stage: &'static str, message: impl Into<String>) -> CompileError {
        CompileError {
            stage,
            message: message.into(),
        }
    }
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} error: {}", self.stage, self.message)
    }
}

impl std::error::Error for CompileError {}

/// Compiles a MiniC translation unit (user program only; the runtime
/// library is linked in automatically) into an executable image.
///
/// # Errors
///
/// Returns a [`CompileError`] naming the failing stage on malformed source.
pub fn compile(source: &str, options: &Options) -> Result<gpa_image::Image, CompileError> {
    let mut full = String::from(source);
    full.push('\n');
    full.push_str(runtime::MINILIBC_SOURCE);
    compile_freestanding(&full, options)
}

/// Compiles a self-contained MiniC source (no implicit runtime library —
/// the source must not call any `minilibc` function other than the
/// intrinsics `_putc`, `_getc`, `_exit`, `_sbrk`).
///
/// # Errors
///
/// Returns a [`CompileError`] naming the failing stage on malformed source.
pub fn compile_freestanding(
    source: &str,
    options: &Options,
) -> Result<gpa_image::Image, CompileError> {
    let tokens = lexer::lex(source)?;
    let unit = parser::parse(&tokens)?;
    let unit = sema::analyze(unit)?;
    let mut functions = codegen::generate(&unit)?;
    if options.schedule {
        for f in &mut functions {
            sched::schedule_function(f);
        }
    }
    link::link(&unit, functions)
}

/// Compiles one of the bundled benchmark programs by name.
///
/// # Errors
///
/// Returns a [`CompileError`] when `name` is unknown (stage `"driver"`) or
/// — which would be a bug — when a bundled source fails to compile.
pub fn compile_benchmark(name: &str, options: &Options) -> Result<gpa_image::Image, CompileError> {
    let source = programs::source(name)
        .ok_or_else(|| CompileError::new("driver", format!("unknown benchmark `{name}`")))?;
    compile(source, options)
}
