//! The bundled benchmark programs: MiniC re-implementations of the eight
//! MiBench kernels used in the paper's evaluation (Table 1).
//!
//! Each program is deterministic — inputs are embedded or produced by the
//! runtime's seeded LCG — and prints checksums, so the emulator can verify
//! semantic preservation after procedural abstraction bit-for-bit.
//!
//! The kernels mirror their MiBench namesakes in structure: `bitcnts` runs
//! a suite of bit-counting routines, `crc` is table-driven CRC-32,
//! `dijkstra` runs single-source shortest paths over an adjacency matrix,
//! `patricia` exercises a binary (PATRICIA-style) bit trie, `qsort` sorts
//! through a function-pointer comparator, `rijndael` is AES-128 with
//! hand-unrolled MixColumns (the reorder-heavy code the paper highlights),
//! `search` is Boyer–Moore–Horspool, and `sha` is SHA-1.

/// Names of the bundled benchmarks, in the paper's Table 1 order.
pub const BENCHMARKS: [&str; 8] = [
    "bitcnts", "crc", "dijkstra", "patricia", "qsort", "rijndael", "search", "sha",
];

/// Returns the MiniC source of a bundled benchmark, or `None` for unknown
/// names.
///
/// # Examples
///
/// ```
/// assert!(gpa_minicc::programs::source("crc").is_some());
/// assert!(gpa_minicc::programs::source("nope").is_none());
/// ```
pub fn source(name: &str) -> Option<&'static str> {
    Some(match name {
        "bitcnts" => BITCNTS,
        "crc" => CRC,
        "dijkstra" => DIJKSTRA,
        "patricia" => PATRICIA,
        "qsort" => QSORT,
        "rijndael" => RIJNDAEL,
        "search" => SEARCH,
        "sha" => SHA,
        _ => return None,
    })
}

const BITCNTS: &str = r#"
// bitcnts: a suite of bit-counting strategies over LCG data (MiBench-style).

int bits_table[256];
int nibble_table[16];

int init_tables() {
    int i;
    for (i = 0; i < 256; i++) {
        int v = i;
        int c = 0;
        while (v) {
            c = c + (v & 1);
            v = (v >> 1) & 0x7fffffff;
        }
        bits_table[i] = c;
    }
    for (i = 0; i < 16; i++) {
        nibble_table[i] = bits_table[i];
    }
    return 0;
}

// Strategy 1: shift-and-test, one bit per iteration.
int bitcount_shift(int x) {
    int n = 0;
    int i;
    for (i = 0; i < 32; i++) {
        n = n + (x & 1);
        x = (x >> 1) & 0x7fffffff;
    }
    return n;
}

// Strategy 2: Kernighan's sparse count.
int bitcount_sparse(int x) {
    int n = 0;
    while (x) {
        x = x & (x - 1);
        n++;
    }
    return n;
}

// Strategy 3: table lookup, byte at a time.
int bitcount_table(int x) {
    int n = bits_table[x & 0xff];
    n = n + bits_table[(x >> 8) & 0xff];
    n = n + bits_table[(x >> 16) & 0xff];
    n = n + bits_table[(x >> 24) & 0xff];
    return n;
}

// Strategy 4: nibble-at-a-time table walk.
int bitcount_nibble(int x) {
    int n = 0;
    while (x) {
        n = n + nibble_table[x & 15];
        x = (x >> 4) & 0x0fffffff;
    }
    return n;
}

// Strategy 5: parallel reduction (SWAR).
int bitcount_swar(int x) {
    x = (x & 0x55555555) + ((x >> 1) & 0x55555555);
    x = (x & 0x33333333) + ((x >> 2) & 0x33333333);
    x = (x & 0x0f0f0f0f) + ((x >> 4) & 0x0f0f0f0f);
    x = (x & 0x00ff00ff) + ((x >> 8) & 0x00ff00ff);
    x = (x & 0x0000ffff) + ((x >> 16) & 0x0000ffff);
    return x;
}

// Strategy 6: recursive halving.
int bitcount_recursive(int x) {
    if (x == 0) { return 0; }
    return (x & 1) + bitcount_recursive((x >> 1) & 0x7fffffff);
}

// Strategy 7: dual nibbles per step.
int bitcount_dual(int x) {
    int n = 0;
    while (x) {
        n = n + nibble_table[x & 15] + nibble_table[(x >> 4) & 15];
        x = (x >> 8) & 0x00ffffff;
    }
    return n;
}

int run_one(int which, int x) {
    if (which == 0) { return bitcount_shift(x); }
    if (which == 1) { return bitcount_sparse(x); }
    if (which == 2) { return bitcount_table(x); }
    if (which == 3) { return bitcount_nibble(x); }
    if (which == 4) { return bitcount_swar(x); }
    if (which == 5) { return bitcount_recursive(x); }
    return bitcount_dual(x);
}

// Bit reversal, used for a second checksum phase.
int bit_reverse(int x) {
    int r = 0;
    int i;
    for (i = 0; i < 32; i++) {
        r = (r << 1) | (x & 1);
        x = (x >> 1) & 0x7fffffff;
    }
    return r;
}

char label_buf[16];

int main() {
    init_tables();
    srand(42);
    int totals[7];
    int w;
    for (w = 0; w < 7; w++) { totals[w] = 0; }
    int i;
    for (i = 0; i < 250; i++) {
        int x = rand() * 65536 + rand();
        for (w = 0; w < 7; w++) {
            totals[w] = totals[w] + run_one(w, x);
        }
    }
    for (w = 0; w < 7; w++) {
        putstr("count[");
        itoa(w, label_buf);
        putstr(label_buf);
        putstr("] = ");
        putint(totals[w]);
        _putc('\n');
    }
    for (w = 1; w < 7; w++) {
        if (totals[w] != totals[0]) {
            puts("MISMATCH");
            return 1;
        }
    }
    // Phase 2: reversal involution checksum.
    srand(7);
    int rev_ok = 1;
    int acc = 0;
    for (i = 0; i < 100; i++) {
        int x = rand() * 65536 + rand();
        int r = bit_reverse(x);
        if (bit_reverse(r) != x) { rev_ok = 0; }
        if (bitcount_table(r) != bitcount_table(x)) { rev_ok = 0; }
        acc = (acc + bitcount_swar(r)) & 0xffff;
    }
    if (!rev_ok) {
        puts("REVERSAL MISMATCH");
        return 2;
    }
    putstr("rev acc = ");
    putint(acc);
    _putc('\n');
    puts("ok");
    return 0;
}
"#;

const CRC: &str = r#"
// crc: table-driven CRC-32, bitwise CRC-16-CCITT and Adler-32 over a
// generated buffer and embedded strings.

int crc_table[256];

int crc_init() {
    int n;
    for (n = 0; n < 256; n++) {
        int c = n;
        int k;
        for (k = 0; k < 8; k++) {
            if (c & 1) {
                c = ((c >> 1) & 0x7fffffff) ^ 0xedb88320;
            } else {
                c = (c >> 1) & 0x7fffffff;
            }
        }
        crc_table[n] = c;
    }
    return 0;
}

int crc_update(int crc, int byte) {
    return crc_table[(crc ^ byte) & 0xff] ^ ((crc >> 8) & 0x00ffffff);
}

int crc_buffer(char *buf, int len) {
    int crc = ~0;
    int i;
    for (i = 0; i < len; i++) {
        crc = crc_update(crc, buf[i]);
    }
    return ~crc;
}

int crc_string(char *s) {
    int crc = ~0;
    int i = 0;
    while (s[i]) {
        crc = crc_update(crc, s[i]);
        i++;
    }
    return ~crc;
}

// Bitwise CRC-16-CCITT (poly 0x1021), no table.
int crc16_update(int crc, int byte) {
    crc = crc ^ (byte << 8);
    int k;
    for (k = 0; k < 8; k++) {
        if (crc & 0x8000) {
            crc = ((crc << 1) ^ 0x1021) & 0xffff;
        } else {
            crc = (crc << 1) & 0xffff;
        }
    }
    return crc;
}

int crc16_buffer(char *buf, int len) {
    int crc = 0xffff;
    int i;
    for (i = 0; i < len; i++) {
        crc = crc16_update(crc, buf[i]);
    }
    return crc;
}

// Adler-32.
int adler32(char *buf, int len) {
    int a = 1;
    int b = 0;
    int i;
    for (i = 0; i < len; i++) {
        a = (a + buf[i]) % 65521;
        b = (b + a) % 65521;
    }
    return (b << 16) | a;
}

char buffer[2048];
char numbuf[16];

int fill_buffer() {
    srand(7);
    int i;
    for (i = 0; i < 2048; i++) {
        buffer[i] = rand() & 0xff;
    }
    return 0;
}

int main() {
    crc_init();
    fill_buffer();
    putstr("crc(buf) = ");
    puthex(crc_buffer(buffer, 2048));
    _putc('\n');
    putstr("crc(abc) = ");
    puthex(crc_string("abc"));
    _putc('\n');
    putstr("crc(quick) = ");
    puthex(crc_string("The quick brown fox jumps over the lazy dog"));
    _putc('\n');
    // Rolling restart: checksum of checksums.
    int acc = 0;
    int chunk;
    for (chunk = 0; chunk < 8; chunk++) {
        acc = acc ^ crc_buffer(buffer + chunk * 256, 256);
    }
    putstr("acc = ");
    puthex(acc);
    _putc('\n');
    // CRC-16 and Adler-32 phases.
    putstr("crc16 = ");
    puthex(crc16_buffer(buffer, 1024));
    _putc('\n');
    putstr("adler = ");
    puthex(adler32(buffer, 2048));
    _putc('\n');
    // Checksum the decimal rendering of earlier results (pulls in itoa).
    itoa(acc & 0x7fffffff, numbuf);
    putstr("crc(itoa(acc)) = ");
    puthex(crc_string(numbuf));
    _putc('\n');
    return 0;
}
"#;

const DIJKSTRA: &str = r#"
// dijkstra: single-source shortest paths with path reconstruction, on two
// random graph densities.

int adj[400];      // 20 x 20 adjacency matrix
int dist[20];
int prev[20];
int visited[20];

int build_graph(int seed, int density) {
    srand(seed);
    int i;
    int j;
    for (i = 0; i < 20; i++) {
        for (j = 0; j < 20; j++) {
            if (i == j) {
                adj[i * 20 + j] = 0;
            } else {
                int w = rand() % 100;
                if (w < density) {
                    adj[i * 20 + j] = w % 50 + 1;
                } else {
                    adj[i * 20 + j] = 0x7fffff; // no edge
                }
            }
        }
    }
    return 0;
}

int dijkstra(int src) {
    int i;
    for (i = 0; i < 20; i++) {
        dist[i] = 0x7fffff;
        prev[i] = -1;
        visited[i] = 0;
    }
    dist[src] = 0;
    int round;
    for (round = 0; round < 20; round++) {
        int best = -1;
        int best_d = 0x7fffff + 1;
        for (i = 0; i < 20; i++) {
            if (!visited[i] && dist[i] < best_d) {
                best = i;
                best_d = dist[i];
            }
        }
        if (best < 0) { break; }
        visited[best] = 1;
        for (i = 0; i < 20; i++) {
            int w = adj[best * 20 + i];
            if (w < 0x7fffff && dist[best] + w < dist[i]) {
                dist[i] = dist[best] + w;
                prev[i] = best;
            }
        }
    }
    int sum = 0;
    for (i = 0; i < 20; i++) {
        if (dist[i] < 0x7fffff) {
            sum = sum + dist[i];
        }
    }
    return sum;
}

// Walks prev[] backwards, returns hop count and prints the path.
int print_path(int dst) {
    int stack[20];
    int depth = 0;
    int cur = dst;
    while (cur >= 0 && depth < 20) {
        stack[depth] = cur;
        depth++;
        cur = prev[cur];
    }
    int i;
    for (i = depth - 1; i >= 0; i--) {
        putint(stack[i]);
        if (i > 0) { putstr("->"); }
    }
    _putc('\n');
    return depth;
}

int run_suite(int seed, int density) {
    build_graph(seed, density);
    int total = 0;
    int src;
    for (src = 0; src < 20; src++) {
        total = total + dijkstra(src);
    }
    putstr("total = ");
    putint(total);
    _putc('\n');
    // Path details from node 0.
    dijkstra(0);
    int hops = 0;
    int d;
    for (d = 15; d < 20; d++) {
        if (dist[d] < 0x7fffff) {
            putstr("path to ");
            putint(d);
            putstr(" (cost ");
            putint(dist[d]);
            putstr("): ");
            hops = hops + print_path(d);
        }
    }
    putstr("hops = ");
    putint(hops);
    _putc('\n');
    return total;
}

int main() {
    int dense = run_suite(99, 90);
    int sparse = run_suite(123, 35);
    putstr("dense/sparse = ");
    putint(dense);
    _putc(' ');
    putint(sparse);
    _putc('\n');
    return 0;
}
"#;

const PATRICIA: &str = r#"
// patricia: a binary bit-trie keyed on 32-bit "addresses" (PATRICIA-style
// routing-table workload), with longest-prefix-match queries and a
// per-depth occupancy histogram.

int node_key[1024];
int node_left[1024];
int node_right[1024];
int node_used;
int depth_hist[33];

int bit_of(int key, int b) {
    return (key >> (31 - b)) & 1;
}

int new_node(int key) {
    int n = node_used;
    node_used = node_used + 1;
    node_key[n] = key;
    node_left[n] = -1;
    node_right[n] = -1;
    return n;
}

// Inserts key, returns 1 when newly inserted, 0 when already present.
int trie_insert(int key) {
    if (node_used == 0) {
        new_node(key);
        return 1;
    }
    int cur = 0;
    int depth = 0;
    while (depth < 32) {
        if (node_key[cur] == key) { return 0; }
        if (bit_of(key, depth)) {
            if (node_right[cur] < 0) {
                node_right[cur] = new_node(key);
                return 1;
            }
            cur = node_right[cur];
        } else {
            if (node_left[cur] < 0) {
                node_left[cur] = new_node(key);
                return 1;
            }
            cur = node_left[cur];
        }
        depth = depth + 1;
    }
    return 0;
}

int trie_lookup(int key) {
    if (node_used == 0) { return 0; }
    int cur = 0;
    int depth = 0;
    while (cur >= 0 && depth <= 32) {
        if (node_key[cur] == key) { return 1; }
        if (bit_of(key, depth)) {
            cur = node_right[cur];
        } else {
            cur = node_left[cur];
        }
        depth = depth + 1;
    }
    return 0;
}

// Longest shared prefix (in bits) between the probe and any key on its
// search path — the routing-table "longest prefix match".
int match_bits(int a, int b) {
    int n = 0;
    while (n < 32 && bit_of(a, n) == bit_of(b, n)) {
        n++;
    }
    return n;
}

int trie_lpm(int key) {
    if (node_used == 0) { return 0; }
    int best = 0;
    int cur = 0;
    int depth = 0;
    while (cur >= 0 && depth <= 32) {
        int m = match_bits(key, node_key[cur]);
        if (m > best) { best = m; }
        if (bit_of(key, depth)) {
            cur = node_right[cur];
        } else {
            cur = node_left[cur];
        }
        depth = depth + 1;
    }
    return best;
}

int trie_depth(int cur) {
    if (cur < 0) { return 0; }
    int l = trie_depth(node_left[cur]);
    int r = trie_depth(node_right[cur]);
    if (l > r) { return l + 1; }
    return r + 1;
}

int fill_hist(int cur, int depth) {
    if (cur < 0) { return 0; }
    depth_hist[depth]++;
    fill_hist(node_left[cur], depth + 1);
    fill_hist(node_right[cur], depth + 1);
    return 0;
}

int main() {
    node_used = 0;
    srand(1234);
    int inserted = 0;
    int dup = 0;
    int i;
    int keys[256];
    for (i = 0; i < 256; i++) {
        keys[i] = (rand() * 65536 + rand()) & 0x3fffffff;
        if (trie_insert(keys[i])) {
            inserted++;
        } else {
            dup++;
        }
    }
    // Re-insert half: all duplicates.
    for (i = 0; i < 128; i++) {
        if (trie_insert(keys[i])) {
            inserted++;
        } else {
            dup++;
        }
    }
    int hits = 0;
    int misses = 0;
    for (i = 0; i < 256; i++) {
        if (trie_lookup(keys[i])) { hits++; } else { misses++; }
        if (trie_lookup(keys[i] ^ 0x1555)) { hits++; } else { misses++; }
    }
    putstr("inserted = "); putint(inserted); _putc('\n');
    putstr("dup = "); putint(dup); _putc('\n');
    putstr("hits = "); putint(hits); _putc('\n');
    putstr("misses = "); putint(misses); _putc('\n');
    putstr("depth = "); putint(trie_depth(0)); _putc('\n');
    putstr("nodes = "); putint(node_used); _putc('\n');
    // Longest-prefix-match phase.
    srand(777);
    int lpm_sum = 0;
    for (i = 0; i < 128; i++) {
        int probe = (rand() * 65536 + rand()) & 0x3fffffff;
        lpm_sum = lpm_sum + trie_lpm(probe);
    }
    putstr("lpm = "); putint(lpm_sum); _putc('\n');
    // Depth histogram phase.
    for (i = 0; i < 33; i++) { depth_hist[i] = 0; }
    fill_hist(0, 0);
    int occupied = 0;
    int weighted = 0;
    for (i = 0; i < 33; i++) {
        if (depth_hist[i] > 0) {
            occupied++;
            weighted = weighted + i * depth_hist[i];
        }
    }
    putstr("levels = "); putint(occupied); _putc('\n');
    putstr("weighted = "); putint(weighted); _putc('\n');
    return 0;
}
"#;

const QSORT: &str = r#"
// qsort: recursive quicksort driven through a function-pointer comparator,
// cross-checked against insertion sort and bottom-up merge sort, plus
// string sorting (MiBench qsort sorts both).

int values[300];
int copy_a[300];
int copy_b[300];
int merge_tmp[300];

int cmp_int_asc(int a, int b) {
    return a - b;
}

int cmp_int_desc(int a, int b) {
    return b - a;
}

int cmp_abs(int a, int b) {
    return abs(a) - abs(b);
}

int cmp_mod7(int a, int b) {
    int ra = ((a % 7) + 7) % 7;
    int rb = ((b % 7) + 7) % 7;
    if (ra != rb) { return ra - rb; }
    return a - b;
}

// Generic quicksort over an int array using comparator `cmp`.
int sort_range(int *arr, int lo, int hi, int cmp) {
    if (lo >= hi) { return 0; }
    int pivot = arr[(lo + hi) / 2];
    int i = lo;
    int j = hi;
    while (i <= j) {
        while (cmp(arr[i], pivot) < 0) { i++; }
        while (cmp(arr[j], pivot) > 0) { j--; }
        if (i <= j) {
            int t = arr[i];
            arr[i] = arr[j];
            arr[j] = t;
            i++;
            j--;
        }
    }
    sort_range(arr, lo, j, cmp);
    sort_range(arr, i, hi, cmp);
    return 0;
}

// Insertion sort, same comparator interface.
int insertion_sort(int *arr, int n, int cmp) {
    int i;
    for (i = 1; i < n; i++) {
        int v = arr[i];
        int j = i - 1;
        while (j >= 0 && cmp(arr[j], v) > 0) {
            arr[j + 1] = arr[j];
            j--;
        }
        arr[j + 1] = v;
    }
    return 0;
}

// Bottom-up merge sort.
int merge_sort(int *arr, int n, int cmp) {
    int width = 1;
    while (width < n) {
        int lo = 0;
        while (lo < n) {
            int mid = lo + width;
            int hi = lo + 2 * width;
            if (mid > n) { mid = n; }
            if (hi > n) { hi = n; }
            int a = lo;
            int b = mid;
            int o = lo;
            while (a < mid && b < hi) {
                if (cmp(arr[a], arr[b]) <= 0) {
                    merge_tmp[o] = arr[a];
                    a++;
                } else {
                    merge_tmp[o] = arr[b];
                    b++;
                }
                o++;
            }
            while (a < mid) { merge_tmp[o] = arr[a]; a++; o++; }
            while (b < hi) { merge_tmp[o] = arr[b]; b++; o++; }
            for (o = lo; o < hi; o++) { arr[o] = merge_tmp[o]; }
            lo = lo + 2 * width;
        }
        width = width * 2;
    }
    return 0;
}

int fill(int *arr, int seed) {
    srand(seed);
    int i;
    for (i = 0; i < 300; i++) {
        arr[i] = rand() - 16384;
    }
    return 0;
}

int checksum_sorted(int *arr, int cmp) {
    // Verify order and compute a positional checksum.
    int ok = 1;
    int acc = 0;
    int i;
    for (i = 0; i < 300; i++) {
        acc = acc + arr[i] * (i % 7 + 1);
        if (i > 0 && cmp(arr[i - 1], arr[i]) > 0) { ok = 0; }
    }
    if (!ok) { return -1; }
    return acc;
}

// All three algorithms must agree element-wise.
int agree(int cmp, int seed) {
    fill(values, seed);
    fill(copy_a, seed);
    fill(copy_b, seed);
    sort_range(values, 0, 299, cmp);
    insertion_sort(copy_a, 300, cmp);
    merge_sort(copy_b, 300, cmp);
    int i;
    for (i = 0; i < 300; i++) {
        if (values[i] != copy_a[i] || values[i] != copy_b[i]) {
            return 0;
        }
    }
    return 1;
}

// String sorting via pointer permutation.
char *words[12];

int sort_words(int n) {
    int i;
    for (i = 1; i < n; i++) {
        int k = i;
        while (k > 0 && strcmp(words[k - 1], words[k]) > 0) {
            char *t = words[k - 1];
            words[k - 1] = words[k];
            words[k] = t;
            k--;
        }
    }
    return n;
}

int main() {
    fill(values, 5);
    sort_range(values, 0, 299, cmp_int_asc);
    putstr("asc = "); putint(checksum_sorted(values, cmp_int_asc)); _putc('\n');
    fill(values, 5);
    sort_range(values, 0, 299, cmp_int_desc);
    putstr("desc = "); putint(checksum_sorted(values, cmp_int_desc)); _putc('\n');
    fill(values, 5);
    sort_range(values, 0, 299, cmp_abs);
    putstr("abs = "); putint(checksum_sorted(values, cmp_abs)); _putc('\n');
    fill(values, 5);
    sort_range(values, 0, 299, cmp_mod7);
    putstr("mod7 = "); putint(checksum_sorted(values, cmp_mod7)); _putc('\n');

    if (!agree(cmp_int_asc, 11) || !agree(cmp_abs, 12) || !agree(cmp_mod7, 13)) {
        puts("ALGORITHMS DISAGREE");
        return 1;
    }
    puts("algorithms agree");

    words[0] = "pear"; words[1] = "apple"; words[2] = "orange";
    words[3] = "kiwi"; words[4] = "banana"; words[5] = "cherry";
    words[6] = "mango"; words[7] = "plum"; words[8] = "fig";
    words[9] = "date"; words[10] = "lime"; words[11] = "grape";
    sort_words(12);
    int i;
    for (i = 0; i < 12; i++) {
        putstr(words[i]);
        _putc(' ');
    }
    _putc('\n');
    return 0;
}
"#;

const RIJNDAEL: &str = r#"
// rijndael: AES-128 encryption AND decryption in ECB mode with
// hand-unrolled (Inv)MixColumns — MiBench rijndael runs both directions.
// This is the kernel the paper highlights: each unrolled column produces
// the same computation, rescheduled differently by the compiler.

char sbox[256];
char inv_sbox[256];
char rkeys[176];
char state[16];

// Multiply in GF(2^8).
int gmul(int a, int b) {
    int p = 0;
    int i;
    for (i = 0; i < 8; i++) {
        if (b & 1) { p = p ^ a; }
        int hi = a & 0x80;
        a = (a << 1) & 0xff;
        if (hi) { a = a ^ 0x1b; }
        b = (b >> 1) & 0x7f;
    }
    return p & 0xff;
}

int rotl8(int x, int n) {
    return ((x << n) | ((x >> (8 - n)) & ((1 << n) - 1))) & 0xff;
}

int build_sbox() {
    // Generate multiplicative inverses by brute force, then apply the
    // affine transform; fill the inverse box alongside.
    int x;
    sbox[0] = 0x63;
    inv_sbox[0x63] = 0;
    for (x = 1; x < 256; x++) {
        int inv = 1;
        int y;
        for (y = 1; y < 256; y++) {
            if (gmul(x, y) == 1) { inv = y; break; }
        }
        int s = inv ^ rotl8(inv, 1) ^ rotl8(inv, 2) ^ rotl8(inv, 3) ^ rotl8(inv, 4) ^ 0x63;
        sbox[x] = s & 0xff;
        inv_sbox[s & 0xff] = x;
    }
    return 0;
}

int xtime(int x) {
    x = x << 1;
    if (x & 0x100) { x = x ^ 0x11b; }
    return x & 0xff;
}

int key_expansion(char *key) {
    int i;
    for (i = 0; i < 16; i++) { rkeys[i] = key[i]; }
    int rcon = 1;
    for (i = 16; i < 176; i = i + 4) {
        int t0 = rkeys[i - 4];
        int t1 = rkeys[i - 3];
        int t2 = rkeys[i - 2];
        int t3 = rkeys[i - 1];
        if (i % 16 == 0) {
            int tmp = t0;
            t0 = sbox[t1] ^ rcon;
            t1 = sbox[t2];
            t2 = sbox[t3];
            t3 = sbox[tmp];
            rcon = xtime(rcon);
        }
        rkeys[i]     = (rkeys[i - 16] ^ t0) & 0xff;
        rkeys[i + 1] = (rkeys[i - 15] ^ t1) & 0xff;
        rkeys[i + 2] = (rkeys[i - 14] ^ t2) & 0xff;
        rkeys[i + 3] = (rkeys[i - 13] ^ t3) & 0xff;
    }
    return 0;
}

int add_round_key(int round) {
    int i;
    for (i = 0; i < 16; i++) {
        state[i] = (state[i] ^ rkeys[round * 16 + i]) & 0xff;
    }
    return 0;
}

int sub_bytes() {
    int i;
    for (i = 0; i < 16; i++) {
        state[i] = sbox[state[i]];
    }
    return 0;
}

int inv_sub_bytes() {
    int i;
    for (i = 0; i < 16; i++) {
        state[i] = inv_sbox[state[i]];
    }
    return 0;
}

int shift_rows() {
    int t;
    // Row 1: rotate left by 1.
    t = state[1]; state[1] = state[5]; state[5] = state[9]; state[9] = state[13]; state[13] = t;
    // Row 2: rotate left by 2.
    t = state[2]; state[2] = state[10]; state[10] = t;
    t = state[6]; state[6] = state[14]; state[14] = t;
    // Row 3: rotate left by 3.
    t = state[15]; state[15] = state[11]; state[11] = state[7]; state[7] = state[3]; state[3] = t;
    return 0;
}

int inv_shift_rows() {
    int t;
    // Row 1: rotate right by 1.
    t = state[13]; state[13] = state[9]; state[9] = state[5]; state[5] = state[1]; state[1] = t;
    // Row 2: rotate right by 2.
    t = state[2]; state[2] = state[10]; state[10] = t;
    t = state[6]; state[6] = state[14]; state[14] = t;
    // Row 3: rotate right by 3.
    t = state[3]; state[3] = state[7]; state[7] = state[11]; state[11] = state[15]; state[15] = t;
    return 0;
}

int mix_columns() {
    // All four columns unrolled: identical computations over different
    // state slots — the reordering-rich pattern from the paper.
    int a0; int a1; int a2; int a3; int x;

    a0 = state[0]; a1 = state[1]; a2 = state[2]; a3 = state[3];
    x = a0 ^ a1 ^ a2 ^ a3;
    state[0] = (a0 ^ x ^ xtime(a0 ^ a1)) & 0xff;
    state[1] = (a1 ^ x ^ xtime(a1 ^ a2)) & 0xff;
    state[2] = (a2 ^ x ^ xtime(a2 ^ a3)) & 0xff;
    state[3] = (a3 ^ x ^ xtime(a3 ^ a0)) & 0xff;

    a0 = state[4]; a1 = state[5]; a2 = state[6]; a3 = state[7];
    x = a0 ^ a1 ^ a2 ^ a3;
    state[4] = (a0 ^ x ^ xtime(a0 ^ a1)) & 0xff;
    state[5] = (a1 ^ x ^ xtime(a1 ^ a2)) & 0xff;
    state[6] = (a2 ^ x ^ xtime(a2 ^ a3)) & 0xff;
    state[7] = (a3 ^ x ^ xtime(a3 ^ a0)) & 0xff;

    a0 = state[8]; a1 = state[9]; a2 = state[10]; a3 = state[11];
    x = a0 ^ a1 ^ a2 ^ a3;
    state[8]  = (a0 ^ x ^ xtime(a0 ^ a1)) & 0xff;
    state[9]  = (a1 ^ x ^ xtime(a1 ^ a2)) & 0xff;
    state[10] = (a2 ^ x ^ xtime(a2 ^ a3)) & 0xff;
    state[11] = (a3 ^ x ^ xtime(a3 ^ a0)) & 0xff;

    a0 = state[12]; a1 = state[13]; a2 = state[14]; a3 = state[15];
    x = a0 ^ a1 ^ a2 ^ a3;
    state[12] = (a0 ^ x ^ xtime(a0 ^ a1)) & 0xff;
    state[13] = (a1 ^ x ^ xtime(a1 ^ a2)) & 0xff;
    state[14] = (a2 ^ x ^ xtime(a2 ^ a3)) & 0xff;
    state[15] = (a3 ^ x ^ xtime(a3 ^ a0)) & 0xff;
    return 0;
}

int inv_mix_one(int base) {
    int a0 = state[base];
    int a1 = state[base + 1];
    int a2 = state[base + 2];
    int a3 = state[base + 3];
    state[base]     = (gmul(a0, 14) ^ gmul(a1, 11) ^ gmul(a2, 13) ^ gmul(a3, 9)) & 0xff;
    state[base + 1] = (gmul(a0, 9)  ^ gmul(a1, 14) ^ gmul(a2, 11) ^ gmul(a3, 13)) & 0xff;
    state[base + 2] = (gmul(a0, 13) ^ gmul(a1, 9)  ^ gmul(a2, 14) ^ gmul(a3, 11)) & 0xff;
    state[base + 3] = (gmul(a0, 11) ^ gmul(a1, 13) ^ gmul(a2, 9)  ^ gmul(a3, 14)) & 0xff;
    return 0;
}

int inv_mix_columns() {
    // Four unrolled calls — the decryption twin of mix_columns.
    inv_mix_one(0);
    inv_mix_one(4);
    inv_mix_one(8);
    inv_mix_one(12);
    return 0;
}

int encrypt_block(char *block) {
    int i;
    for (i = 0; i < 16; i++) { state[i] = block[i]; }
    add_round_key(0);
    int round;
    for (round = 1; round < 10; round++) {
        sub_bytes();
        shift_rows();
        mix_columns();
        add_round_key(round);
    }
    sub_bytes();
    shift_rows();
    add_round_key(10);
    for (i = 0; i < 16; i++) { block[i] = state[i]; }
    return 0;
}

int decrypt_block(char *block) {
    int i;
    for (i = 0; i < 16; i++) { state[i] = block[i]; }
    add_round_key(10);
    int round;
    for (round = 9; round > 0; round--) {
        inv_shift_rows();
        inv_sub_bytes();
        add_round_key(round);
        inv_mix_columns();
    }
    inv_shift_rows();
    inv_sub_bytes();
    add_round_key(0);
    for (i = 0; i < 16; i++) { block[i] = state[i]; }
    return 0;
}

char key[16];
char data[256];
char reference[256];

int main() {
    build_sbox();
    srand(2718);
    int i;
    for (i = 0; i < 16; i++) { key[i] = rand() & 0xff; }
    for (i = 0; i < 256; i++) {
        data[i] = rand() & 0xff;
        reference[i] = data[i];
    }
    key_expansion(key);
    int b;
    for (b = 0; b < 16; b++) {
        encrypt_block(data + b * 16);
    }
    // Print a digest of the ciphertext.
    int acc0 = 0; int acc1 = 0; int acc2 = 0; int acc3 = 0;
    for (i = 0; i < 256; i = i + 4) {
        acc0 = (acc0 + data[i]) & 0xffffff;
        acc1 = (acc1 ^ (data[i + 1] << (i % 16))) & 0xffffff;
        acc2 = (acc2 + data[i + 2] * 31) & 0xffffff;
        acc3 = (acc3 ^ data[i + 3] ^ i) & 0xffffff;
    }
    putstr("aes enc: ");
    puthex(acc0); _putc(' ');
    puthex(acc1); _putc(' ');
    puthex(acc2); _putc(' ');
    puthex(acc3); _putc('\n');
    // Decrypt and verify the round trip.
    for (b = 0; b < 16; b++) {
        decrypt_block(data + b * 16);
    }
    if (memcmp(data, reference, 256) != 0) {
        puts("ROUNDTRIP FAILED");
        return 1;
    }
    puts("aes roundtrip ok");
    return 0;
}
"#;

const SEARCH: &str = r#"
// search: Boyer-Moore-Horspool and Knuth-Morris-Pratt substring search
// over embedded prose, cross-checked against the naive scan (MiBench
// stringsearch runs a family of algorithms).

char *haystacks[4];
char *needles[8];
int skip[256];
int failure[32];

int bmh_search(char *text, char *pat) {
    int n = strlen(text);
    int m = strlen(pat);
    if (m == 0 || m > n) { return 0; }
    int i;
    for (i = 0; i < 256; i++) { skip[i] = m; }
    for (i = 0; i < m - 1; i++) { skip[pat[i]] = m - 1 - i; }
    int count = 0;
    int pos = 0;
    while (pos <= n - m) {
        int j = m - 1;
        while (j >= 0 && text[pos + j] == pat[j]) { j--; }
        if (j < 0) {
            count++;
            pos = pos + 1;
        } else {
            pos = pos + skip[text[pos + m - 1]];
        }
    }
    return count;
}

int kmp_search(char *text, char *pat) {
    int n = strlen(text);
    int m = strlen(pat);
    if (m == 0 || m > n || m > 31) { return 0; }
    // Failure function.
    failure[0] = 0;
    int k = 0;
    int q;
    for (q = 1; q < m; q++) {
        while (k > 0 && pat[k] != pat[q]) {
            k = failure[k - 1];
        }
        if (pat[k] == pat[q]) { k++; }
        failure[q] = k;
    }
    // Scan.
    int count = 0;
    k = 0;
    for (q = 0; q < n; q++) {
        while (k > 0 && pat[k] != text[q]) {
            k = failure[k - 1];
        }
        if (pat[k] == text[q]) { k++; }
        if (k == m) {
            count++;
            k = failure[k - 1];
        }
    }
    return count;
}

int naive_search(char *text, char *pat) {
    int n = strlen(text);
    int m = strlen(pat);
    if (m == 0 || m > n) { return 0; }
    int count = 0;
    int pos;
    for (pos = 0; pos + m <= n; pos++) {
        int j = 0;
        while (j < m && text[pos + j] == pat[j]) { j++; }
        if (j == m) { count++; }
    }
    return count;
}

int main() {
    haystacks[0] = "the quick brown fox jumps over the lazy dog while the cat naps in the sun and the dog barks at the moon";
    haystacks[1] = "abra abracadabra abracadabra cadabra abra abracadabra dab dab dabra";
    haystacks[2] = "mississippi mississippi is a river in mississippi with many s and i letters sis sip sippi";
    haystacks[3] = "aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa";
    needles[0] = "the";
    needles[1] = "dog";
    needles[2] = "abracadabra";
    needles[3] = "dab";
    needles[4] = "issi";
    needles[5] = "sip";
    needles[6] = "aaa";
    needles[7] = "zebra";
    int total = 0;
    int h;
    for (h = 0; h < 4; h++) {
        int p;
        for (p = 0; p < 8; p++) {
            int fast = bmh_search(haystacks[h], needles[p]);
            int kmp = kmp_search(haystacks[h], needles[p]);
            int slow = naive_search(haystacks[h], needles[p]);
            if (fast != slow || kmp != slow) {
                puts("MISMATCH");
                return 1;
            }
            total = total + fast;
            putint(fast);
            _putc(' ');
        }
        _putc('\n');
    }
    putstr("total = ");
    putint(total);
    _putc('\n');
    // Case-folded phase: fold and re-count one pattern per haystack.
    char folded[128];
    int f;
    int fold_total = 0;
    for (h = 0; h < 4; h++) {
        int n = strlen(haystacks[h]);
        if (n > 127) { n = 127; }
        for (f = 0; f < n; f++) {
            char c = haystacks[h][f];
            if (c >= 'A' && c <= 'Z') { c = c + 32; }
            folded[f] = c;
        }
        folded[n] = 0;
        fold_total = fold_total + kmp_search(folded, "the") + bmh_search(folded, "ab");
    }
    putstr("folded = ");
    putint(fold_total);
    _putc('\n');
    return 0;
}
"#;

const SHA: &str = r#"
// sha: SHA-1 with proper message padding over several generated
// messages (MiBench sha hashes whole files).

int w[80];
int h0; int h1; int h2; int h3; int h4;

int rotl(int x, int n) {
    return (x << n) | ((x >> (32 - n)) & ((1 << n) - 1));
}

int sha_init() {
    h0 = 0x67452301;
    h1 = 0xefcdab89;
    h2 = 0x98badcfe;
    h3 = 0x10325476;
    h4 = 0xc3d2e1f0;
    return 0;
}

// Processes one 64-byte block.
int sha_block(char *block) {
    int i;
    for (i = 0; i < 16; i++) {
        w[i] = (block[i * 4] << 24) | (block[i * 4 + 1] << 16)
             | (block[i * 4 + 2] << 8) | block[i * 4 + 3];
    }
    for (i = 16; i < 80; i++) {
        w[i] = rotl(w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16], 1);
    }
    int a = h0; int b = h1; int c = h2; int d = h3; int e = h4;
    for (i = 0; i < 20; i++) {
        int f = (b & c) | (~b & d);
        int t = rotl(a, 5) + f + e + 0x5a827999 + w[i];
        e = d; d = c; c = rotl(b, 30); b = a; a = t;
    }
    for (i = 20; i < 40; i++) {
        int f = b ^ c ^ d;
        int t = rotl(a, 5) + f + e + 0x6ed9eba1 + w[i];
        e = d; d = c; c = rotl(b, 30); b = a; a = t;
    }
    for (i = 40; i < 60; i++) {
        int f = (b & c) | (b & d) | (c & d);
        int t = rotl(a, 5) + f + e + 0x8f1bbcdc + w[i];
        e = d; d = c; c = rotl(b, 30); b = a; a = t;
    }
    for (i = 60; i < 80; i++) {
        int f = b ^ c ^ d;
        int t = rotl(a, 5) + f + e + 0xca62c1d6 + w[i];
        e = d; d = c; c = rotl(b, 30); b = a; a = t;
    }
    h0 = h0 + a;
    h1 = h1 + b;
    h2 = h2 + c;
    h3 = h3 + d;
    h4 = h4 + e;
    return 0;
}

char padded[1152];

// Full SHA-1 of a message: copies, pads with 0x80 + zeros + 64-bit
// length, and runs the compression function over every block.
int sha_message(char *msg, int len) {
    sha_init();
    int total = len + 9;
    int blocks = (total + 63) / 64;
    int padded_len = blocks * 64;
    int i;
    for (i = 0; i < padded_len; i++) { padded[i] = 0; }
    for (i = 0; i < len; i++) { padded[i] = msg[i]; }
    padded[len] = 0x80;
    int bitlen = len * 8;
    padded[padded_len - 1] = bitlen & 0xff;
    padded[padded_len - 2] = (bitlen >> 8) & 0xff;
    padded[padded_len - 3] = (bitlen >> 16) & 0xff;
    padded[padded_len - 4] = (bitlen >> 24) & 0xff;
    int b;
    for (b = 0; b < blocks; b++) {
        sha_block(padded + b * 64);
    }
    return 0;
}

int print_digest(char *tag) {
    putstr(tag);
    puthex(h0); _putc(' ');
    puthex(h1); _putc(' ');
    puthex(h2); _putc(' ');
    puthex(h3); _putc(' ');
    puthex(h4); _putc('\n');
    return 0;
}

char msg[1024];

int main() {
    // Known vector: SHA-1("abc") = a9993e36 4706816a ba3e2571 7850c26c 9cd0d89d.
    sha_message("abc", 3);
    print_digest("sha1(abc): ");
    // Empty message: da39a3ee 5e6b4b0d 3255bfef 95601890 afd80709.
    sha_message("", 0);
    print_digest("sha1(): ");
    // Generated messages of several lengths.
    srand(31415);
    int i;
    for (i = 0; i < 1024; i++) {
        msg[i] = rand() & 0xff;
    }
    int lengths[4];
    lengths[0] = 55;
    lengths[1] = 56;
    lengths[2] = 64;
    lengths[3] = 1000;
    int l;
    for (l = 0; l < 4; l++) {
        sha_message(msg, lengths[l]);
        putstr("sha1(msg[0..");
        putint(lengths[l]);
        putstr("]): ");
        print_digest("");
    }
    return 0;
}
"#;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{compile_benchmark, Options};
    use gpa_emu::Machine;

    fn run(name: &str) -> gpa_emu::Outcome {
        let image =
            compile_benchmark(name, &Options::default()).unwrap_or_else(|e| panic!("{name}: {e}"));
        Machine::new(&image)
            .run(400_000_000)
            .unwrap_or_else(|e| panic!("{name}: {e}"))
    }

    #[test]
    fn all_benchmarks_compile() {
        for name in BENCHMARKS {
            compile_benchmark(name, &Options::default()).unwrap_or_else(|e| panic!("{name}: {e}"));
        }
    }

    #[test]
    fn bitcnts_strategies_agree() {
        let out = run("bitcnts");
        assert_eq!(out.exit_code, 0);
        assert!(out.output_string().contains("ok"));
    }

    #[test]
    fn crc_known_vector() {
        let out = run("crc");
        // CRC-32 of "abc" is 0x352441c2.
        assert!(out.output_string().contains("crc(abc) = 352441c2"));
        // CRC-32 of the fox pangram is 0x414fa339.
        assert!(out.output_string().contains("crc(quick) = 414fa339"));
    }

    #[test]
    fn dijkstra_produces_totals() {
        let out = run("dijkstra");
        assert_eq!(out.exit_code, 0);
        assert!(out.output_string().contains("total = "));
    }

    #[test]
    fn patricia_counts_are_consistent() {
        let out = run("patricia");
        let text = out.output_string();
        assert!(text.contains("dup = "));
        // All 256 original keys must be found again.
        assert!(text.contains("inserted = 256"), "got:\n{text}");
        assert!(text.contains("dup = 128"), "got:\n{text}");
    }

    #[test]
    fn qsort_sorts() {
        let out = run("qsort");
        let text = out.output_string();
        assert!(!text.contains("-1\n"), "unsorted result:\n{text}");
        assert!(
            text.contains("apple banana cherry date fig grape kiwi lime mango orange pear plum")
        );
    }

    #[test]
    fn rijndael_roundtrip() {
        let out = run("rijndael");
        assert_eq!(out.exit_code, 0, "output:\n{}", out.output_string());
        assert!(out.output_string().starts_with("aes enc: "));
        assert!(out.output_string().contains("aes roundtrip ok"));
    }

    #[test]
    fn search_fast_equals_naive() {
        let out = run("search");
        assert_eq!(out.exit_code, 0, "output:\n{}", out.output_string());
        assert!(out.output_string().contains("total = "));
    }

    #[test]
    fn sha_known_vectors() {
        let out = run("sha");
        let text = out.output_string();
        // FIPS 180-1 test vectors.
        assert!(
            text.contains("sha1(abc): a9993e36 4706816a ba3e2571 7850c26c 9cd0d89d"),
            "got:\n{text}"
        );
        assert!(
            text.contains("sha1(): da39a3ee 5e6b4b0d 3255bfef 95601890 afd80709"),
            "got:\n{text}"
        );
    }

    #[test]
    fn deterministic_across_runs() {
        for name in ["crc", "sha"] {
            let a = run(name);
            let b = run(name);
            assert_eq!(a.output, b.output);
            assert_eq!(a.exit_code, b.exit_code);
        }
    }
}
