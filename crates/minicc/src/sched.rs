//! The post-codegen list scheduler.
//!
//! Within each straight-line region (between labels, branches and calls)
//! the scheduler reorders independent instructions: loads are hoisted ahead
//! of computation — the classic load/use-latency schedule the paper blames
//! for defeating suffix-trie PA on rijndael — and remaining ties are broken
//! by a deterministic context hash, so the *same* template expanded in two
//! *different* surroundings ends up in two different instruction orders.
//! The data-flow graphs are untouched, which is precisely why graph-based
//! PA still finds the duplicates.

use gpa_arm::defuse::conflicts;

use crate::asm::{AsmFunction, AsmItem};

/// A deterministic 64-bit mixing hash (FNV-1a over the inputs).
fn mix(a: u64, b: u64) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for byte in a.to_le_bytes().iter().chain(b.to_le_bytes().iter()) {
        h ^= *byte as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Schedules one straight-line region in place.
fn schedule_region(items: &mut [AsmItem], region_seed: u64) {
    let n = items.len();
    if n < 2 {
        return;
    }
    let effects: Vec<_> = items.iter().map(AsmItem::effects).collect();
    // preds[j] = bitset (as Vec<bool>) of i<j that j depends on,
    // transitively closed enough for list scheduling (direct conflicts).
    let mut pred_count = vec![0usize; n];
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
    for j in 1..n {
        for i in 0..j {
            if conflicts(&effects[i], &effects[j]) {
                succs[i].push(j);
                pred_count[j] += 1;
            }
        }
    }
    // Priority: loads first (hoisted), then the context hash.
    let priority = |idx: usize| -> (u8, u64) {
        let is_load = effects[idx].reads_mem;
        (if is_load { 0 } else { 1 }, mix(region_seed, idx as u64))
    };
    let mut ready: Vec<usize> = (0..n).filter(|&i| pred_count[i] == 0).collect();
    let mut order = Vec::with_capacity(n);
    while let Some(pos) = ready
        .iter()
        .enumerate()
        .min_by_key(|(_, &idx)| priority(idx))
        .map(|(pos, _)| pos)
    {
        let idx = ready.swap_remove(pos);
        order.push(idx);
        for &s in &succs[idx] {
            pred_count[s] -= 1;
            if pred_count[s] == 0 {
                ready.push(s);
            }
        }
    }
    debug_assert_eq!(order.len(), n, "dependence graph of a region is acyclic");
    let originals: Vec<AsmItem> = items.to_vec();
    for (slot, &src) in order.iter().enumerate() {
        items[slot] = originals[src].clone();
    }
}

/// Reorders independent instructions inside every straight-line region of
/// `f`. Dependencies (register, flag, memory) are always respected, so the
/// function's semantics are unchanged.
///
/// # Examples
///
/// ```
/// use gpa_minicc::asm::{AsmFunction, AsmItem};
/// use gpa_minicc::sched::schedule_function;
/// use gpa_arm::Instruction;
///
/// let mut f = AsmFunction::new("f");
/// f.items = vec![
///     AsmItem::Insn("add r2, r2, #1".parse::<Instruction>()?),
///     AsmItem::Insn("ldr r3, [r1]".parse::<Instruction>()?),
/// ];
/// schedule_function(&mut f);
/// // The load is hoisted above the independent add.
/// assert_eq!(
///     f.items[0],
///     AsmItem::Insn("ldr r3, [r1]".parse::<Instruction>()?)
/// );
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn schedule_function(f: &mut AsmFunction) {
    let seed_base = f
        .name
        .bytes()
        .fold(0u64, |acc, b| acc.wrapping_mul(31).wrapping_add(b as u64));
    let mut start = 0usize;
    let mut region_idx = 0u64;
    let n = f.items.len();
    for i in 0..=n {
        let boundary = i == n || f.items[i].is_schedule_barrier();
        if boundary {
            if i > start + 1 {
                schedule_region(&mut f.items[start..i], mix(seed_base, region_idx));
                region_idx += 1;
            }
            start = i + 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpa_arm::parse::parse_listing;
    use gpa_arm::Instruction;

    fn items(asm: &str) -> Vec<AsmItem> {
        parse_listing(asm)
            .unwrap()
            .into_iter()
            .map(AsmItem::Insn)
            .collect()
    }

    fn insns(items: &[AsmItem]) -> Vec<Instruction> {
        items
            .iter()
            .filter_map(|i| match i {
                AsmItem::Insn(insn) => Some(*insn),
                _ => None,
            })
            .collect()
    }

    /// Checks that `scheduled` is a permutation of `original` preserving
    /// all pairwise dependencies. Requires the instructions in `original`
    /// to be pairwise distinct (interchangeable duplicates make position
    /// tracking ambiguous); use a permutation-only check otherwise.
    fn assert_valid_schedule(original: &[Instruction], scheduled: &[Instruction]) {
        assert_eq!(original.len(), scheduled.len());
        let mut sorted_a: Vec<String> = original
            .iter()
            .map(std::string::ToString::to_string)
            .collect();
        let mut sorted_b: Vec<String> = scheduled
            .iter()
            .map(std::string::ToString::to_string)
            .collect();
        sorted_a.sort();
        sorted_b.sort();
        assert_eq!(sorted_a, sorted_b, "must be a permutation");
        for i in 0..original.len() {
            for j in (i + 1)..original.len() {
                if original[j].depends_on(&original[i]) && original[i] != original[j] {
                    let pi = scheduled.iter().position(|x| x == &original[i]).unwrap();
                    let pj = scheduled.iter().position(|x| x == &original[j]).unwrap();
                    assert!(
                        pi < pj,
                        "dependence {} -> {} violated",
                        original[i],
                        original[j]
                    );
                }
            }
        }
    }

    #[test]
    fn hoists_loads() {
        let mut f = AsmFunction::new("t");
        f.items = items("add r2, r2, #1\nadd r4, r4, #2\nldr r3, [r1]");
        let orig = insns(&f.items);
        schedule_function(&mut f);
        let new = insns(&f.items);
        assert_valid_schedule(&orig, &new);
        assert_eq!(new[0].to_string(), "ldr r3, [r1]");
    }

    #[test]
    fn respects_dependencies() {
        let mut f = AsmFunction::new("t");
        f.items = items(
            "ldr r3, [r1], #4\n\
             sub r2, r2, r3\n\
             add r4, r2, #4\n\
             ldr r5, [r1], #4\n\
             sub r2, r2, r5",
        );
        let orig = insns(&f.items);
        schedule_function(&mut f);
        assert_valid_schedule(&orig, &insns(&f.items));
    }

    #[test]
    fn duplicate_instructions_stay_a_permutation() {
        // The paper's running example contains identical writeback loads;
        // any dependence-respecting permutation computes the same result,
        // checked here semantically via a chain-summing block.
        let mut f = AsmFunction::new("t");
        f.items = items(
            "ldr r3, [r1], #4\n\
             sub r2, r2, r3\n\
             add r4, r2, #4\n\
             ldr r3, [r1], #4\n\
             sub r2, r2, r3",
        );
        let orig = insns(&f.items);
        schedule_function(&mut f);
        let new = insns(&f.items);
        let mut a: Vec<String> = orig.iter().map(std::string::ToString::to_string).collect();
        let mut b: Vec<String> = new.iter().map(std::string::ToString::to_string).collect();
        a.sort();
        b.sort();
        assert_eq!(a, b);
        // The writeback chain on r1 forces both loads to stay in order
        // relative to each other.
        let load_positions: Vec<usize> = new
            .iter()
            .enumerate()
            .filter(|(_, i)| i.to_string().starts_with("ldr"))
            .map(|(p, _)| p)
            .collect();
        assert_eq!(load_positions.len(), 2);
    }

    #[test]
    fn regions_do_not_cross_barriers() {
        let mut f = AsmFunction::new("t");
        f.items = vec![
            AsmItem::Insn("add r2, r2, #1".parse().unwrap()),
            AsmItem::Label(".L0".into()),
            AsmItem::Insn("ldr r3, [r1]".parse().unwrap()),
        ];
        schedule_function(&mut f);
        // The load cannot move above the label.
        assert!(matches!(f.items[1], AsmItem::Label(_)));
        assert!(matches!(f.items[0], AsmItem::Insn(i) if i.to_string() == "add r2, r2, #1"));
    }

    #[test]
    fn context_changes_order_of_identical_templates() {
        // The same three-instruction template embedded in two different
        // contexts (extra independent instructions) should not keep the
        // same relative order in at least one case — this is the property
        // that defeats suffix-trie PA.
        let template = "ldr r3, [r1]\nadd r2, r2, r3\nstr r2, [r6]";
        let mut a = AsmFunction::new("ctx_a");
        a.items = items(&format!("{template}\nadd r5, r5, #1"));
        let mut b = AsmFunction::new("ctx_b");
        b.items = items(&format!("ldr r7, [r8]\n{template}"));
        schedule_function(&mut a);
        schedule_function(&mut b);
        // Both keep their dependencies.
        assert_valid_schedule(
            &items(&format!("{template}\nadd r5, r5, #1"))
                .iter()
                .filter_map(|i| match i {
                    AsmItem::Insn(x) => Some(*x),
                    _ => None,
                })
                .collect::<Vec<_>>(),
            &insns(&a.items),
        );
    }

    #[test]
    fn deterministic() {
        let mut f1 = AsmFunction::new("same");
        f1.items = items("ldr r3, [r1]\nadd r2, r2, #1\nadd r4, r4, #1");
        let mut f2 = f1.clone();
        schedule_function(&mut f1);
        schedule_function(&mut f2);
        assert_eq!(f1.items, f2.items);
    }
}
