//! ARM code generation from the typed AST.
//!
//! The generator is deliberately template-based, like the simple `-Os`
//! compilers the paper targets: parameters are spilled to the stack frame on
//! entry, expressions are evaluated into a stack of temporary registers
//! (`r4..r10`, callee-saved so they survive calls), and every construct
//! expands to a fixed instruction shape. This produces exactly the kind of
//! repeated code procedural abstraction feeds on.
//!
//! ABI:
//!
//! * arguments in `r0..r3` (at most four), result in `r0`;
//! * `r4..r10` callee-saved, `r12` scratch, `sp` fixed during a body;
//! * division, modulo and variable-amount shifts are runtime calls
//!   (`__divsi3`, `__modsi3`, `__udivsi3`, `__umodsi3`, `__ashl`, `__ashr`),
//!   since the ARM subset has neither a divide instruction nor
//!   register-specified shifts.

use std::collections::HashMap;

use gpa_arm::encode::is_encodable_imm;
use gpa_arm::insn::{AddressMode, DpOp, MemOffset, MemOp, Operand2, ShiftKind};
use gpa_arm::reg::RegSet;
use gpa_arm::{Cond, Instruction, Reg};

use crate::asm::{AsmFunction, AsmItem};
use crate::ast::*;
use crate::CompileError;

/// Temporary-register pool: expression evaluation stack.
const TEMP_REGS: [Reg; 7] = [
    Reg::r(4),
    Reg::r(5),
    Reg::r(6),
    Reg::r(7),
    Reg::r(8),
    Reg::r(9),
    Reg::r(10),
];

/// Built-in intrinsics lowered to `swi` (name, arg count, service number).
pub const INTRINSICS: [(&str, usize, u32); 4] = [
    ("_exit", 1, 0),
    ("_putc", 1, 1),
    ("_getc", 0, 2),
    ("_sbrk", 1, 4),
];

fn err(line: u32, message: impl Into<String>) -> CompileError {
    CompileError::new("codegen", format!("line {line}: {}", message.into()))
}

/// A stack slot for a local or spilled parameter.
#[derive(Clone, Debug)]
struct Slot {
    offset: i32,
    ty: Type,
}

struct FnGen<'a> {
    unit: &'a Unit,
    func: &'a Function,
    out: AsmFunction,
    scopes: Vec<HashMap<String, Slot>>,
    frame_used: i32,
    free_temps: Vec<Reg>,
    used_temps: RegSet,
    label_counter: usize,
    string_counter: &'a mut usize,
    loop_stack: Vec<(String, String)>, // (break target, continue target)
    is_leaf: bool,
}

impl<'a> FnGen<'a> {
    fn emit(&mut self, insn: Instruction) {
        self.out.items.push(AsmItem::Insn(insn));
    }

    fn label(&mut self, name: String) {
        self.out.items.push(AsmItem::Label(name));
    }

    fn fresh_label(&mut self, tag: &str) -> String {
        let n = self.label_counter;
        self.label_counter += 1;
        format!(".L{}_{tag}{n}", self.func.name)
    }

    fn ret_label(&self) -> String {
        format!(".L{}_ret", self.func.name)
    }

    fn branch(&mut self, cond: Cond, label: &str) {
        self.out.items.push(AsmItem::BranchTo {
            cond,
            link: false,
            label: label.to_owned(),
        });
    }

    fn call(&mut self, name: &str) {
        self.is_leaf = false;
        self.out.calls.push(name.to_owned());
        self.out.items.push(AsmItem::BranchTo {
            cond: Cond::Al,
            link: true,
            label: name.to_owned(),
        });
    }

    fn load_addr(&mut self, rd: Reg, symbol: &str) {
        self.out.symbol_refs.push(symbol.to_owned());
        self.out.items.push(AsmItem::LoadAddr {
            rd,
            symbol: symbol.to_owned(),
        });
    }

    fn load_const(&mut self, rd: Reg, value: u32) {
        self.out.items.push(AsmItem::LoadConst { rd, value });
    }

    fn alloc_temp(&mut self, line: u32) -> Result<Reg, CompileError> {
        let r = self
            .free_temps
            .pop()
            .ok_or_else(|| err(line, "expression too deep (temporary registers exhausted)"))?;
        self.used_temps.insert(r);
        Ok(r)
    }

    fn free_temp(&mut self, r: Reg) {
        debug_assert!(TEMP_REGS.contains(&r));
        self.free_temps.push(r);
    }

    fn alloc_slot(&mut self, ty: &Type) -> i32 {
        let size = ((ty.size().max(1) + 3) & !3) as i32;
        let offset = self.frame_used;
        self.frame_used += size;
        offset
    }

    fn declare_local(&mut self, name: &str, ty: Type) -> Slot {
        let slot = Slot {
            offset: self.alloc_slot(&ty),
            ty,
        };
        self.scopes
            .last_mut()
            .expect("scope stack never empty")
            .insert(name.to_owned(), slot.clone());
        slot
    }

    fn lookup_local(&self, name: &str) -> Option<Slot> {
        self.scopes.iter().rev().find_map(|s| s.get(name)).cloned()
    }

    /// Emits `dest = src ± value`, splitting an unencodable immediate into
    /// encodable rotated-byte chunks.
    fn add_sub_imm(&mut self, op: DpOp, dest: Reg, src: Reg, value: u32) {
        debug_assert!(matches!(op, DpOp::Add | DpOp::Sub));
        if value == 0 {
            if dest != src {
                self.emit(Instruction::mov_reg(dest, src));
            }
            return;
        }
        let mut remaining = value;
        let mut cur_src = src;
        while remaining != 0 {
            let chunk = if is_encodable_imm(remaining) {
                remaining
            } else {
                // Peel off the highest 8 bits, aligned to an even rotation.
                let top = 31 - remaining.leading_zeros();
                let shift = (top.saturating_sub(7)) & !1;
                remaining & (0xff << shift)
            };
            self.emit(Instruction::dp_imm(op, dest, cur_src, chunk));
            cur_src = dest;
            remaining &= !chunk;
        }
    }

    /// Loads/stores a scalar of type `ty` at `[base, #offset]`.
    fn mem_access(&mut self, op: MemOp, rd: Reg, base: Reg, offset: i32, ty: &Type) {
        self.emit(Instruction::Mem {
            cond: Cond::Al,
            op,
            byte: ty.size() == 1,
            rd,
            rn: base,
            offset: MemOffset::Imm(offset),
            mode: AddressMode::Offset,
        });
    }

    /// The scale shift for pointer arithmetic on `elem`, if power of two.
    fn scale_shift(elem: &Type) -> Option<u8> {
        match elem.size() {
            1 => Some(0),
            4 => Some(2),
            _ => None,
        }
    }

    /// Emits `dest = base + idx * size(elem)` (both operands registers).
    fn scaled_add(
        &mut self,
        dest: Reg,
        base: Reg,
        idx: Reg,
        elem: &Type,
        line: u32,
    ) -> Result<(), CompileError> {
        match Self::scale_shift(elem) {
            Some(0) => self.emit(Instruction::dp_reg(DpOp::Add, dest, base, idx)),
            Some(shift) => self.emit(Instruction::DataProc {
                cond: Cond::Al,
                op: DpOp::Add,
                set_flags: false,
                rd: dest,
                rn: base,
                op2: Operand2::RegShift(idx, ShiftKind::Lsl, shift),
            }),
            None => return Err(err(line, "unsupported element size for pointer arithmetic")),
        }
        Ok(())
    }

    // ---------------------------------------------------------------
    // Expressions
    // ---------------------------------------------------------------

    /// Evaluates `e` into `dest`, which must be a temporary register (never
    /// `r0..r3` — subexpressions may contain calls).
    fn expr_to(&mut self, e: &Expr, dest: Reg) -> Result<(), CompileError> {
        let line = e.line;
        match &e.kind {
            ExprKind::Int(v) => self.load_const(dest, *v as u32),
            ExprKind::Str(s) => {
                let label = format!(".Lstr{}", *self.string_counter);
                *self.string_counter += 1;
                let mut bytes = s.as_bytes().to_vec();
                bytes.push(0);
                self.out.strings.push((label.clone(), bytes));
                self.load_addr(dest, &label);
            }
            ExprKind::Var(name) => self.var_value(name, dest, &e.ty, line)?,
            ExprKind::Unary(op, inner) => {
                self.expr_to(inner, dest)?;
                match op {
                    UnOp::Neg => self.emit(Instruction::dp_imm(DpOp::Rsb, dest, dest, 0)),
                    UnOp::BitNot => self.emit(Instruction::DataProc {
                        cond: Cond::Al,
                        op: DpOp::Mvn,
                        set_flags: false,
                        rd: dest,
                        rn: Reg::r(0),
                        op2: Operand2::Reg(dest),
                    }),
                    UnOp::Not => {
                        self.emit(Instruction::DataProc {
                            cond: Cond::Al,
                            op: DpOp::Cmp,
                            set_flags: true,
                            rd: Reg::r(0),
                            rn: dest,
                            op2: Operand2::Imm(0),
                        });
                        self.emit(Instruction::mov_imm(dest, 0));
                        self.emit(Instruction::DataProc {
                            cond: Cond::Eq,
                            op: DpOp::Mov,
                            set_flags: false,
                            rd: dest,
                            rn: Reg::r(0),
                            op2: Operand2::Imm(1),
                        });
                    }
                }
            }
            ExprKind::Binary(op, lhs, rhs) => self.binary_to(*op, lhs, rhs, dest, line)?,
            ExprKind::Assign(lhs, rhs) => {
                self.expr_to(rhs, dest)?;
                self.store_to_lvalue(lhs, dest, line)?;
            }
            ExprKind::IncDec {
                target,
                delta,
                postfix,
            } => {
                let elem_scale = match &target.ty {
                    Type::Ptr(p) => p.size() as i32,
                    _ => 1,
                };
                let signed = *delta * elem_scale;
                let (op, amount) = if signed >= 0 {
                    (DpOp::Add, signed as u32)
                } else {
                    (DpOp::Sub, signed.unsigned_abs())
                };
                let t = self.alloc_temp(line)?;
                self.load_from_lvalue(target, dest, line)?;
                if *postfix {
                    self.add_sub_imm(op, t, dest, amount);
                    self.store_to_lvalue(target, t, line)?;
                } else {
                    self.add_sub_imm(op, dest, dest, amount);
                    self.store_to_lvalue(target, dest, line)?;
                }
                self.free_temp(t);
            }
            ExprKind::Call(callee, args) => self.call_to(callee, args, dest, line)?,
            ExprKind::Index(base, idx) => {
                let elem = &e.ty;
                self.expr_to(base, dest)?;
                let t = self.alloc_temp(line)?;
                self.expr_to(idx, t)?;
                if elem.size() == 1 {
                    // Byte loads support a register offset directly.
                    self.emit(Instruction::Mem {
                        cond: Cond::Al,
                        op: MemOp::Ldr,
                        byte: true,
                        rd: dest,
                        rn: dest,
                        offset: MemOffset::Reg(t, false),
                        mode: AddressMode::Offset,
                    });
                } else {
                    self.scaled_add(dest, dest, t, elem, line)?;
                    self.mem_access(MemOp::Ldr, dest, dest, 0, elem);
                }
                self.free_temp(t);
            }
            ExprKind::Deref(inner) => {
                self.expr_to(inner, dest)?;
                self.mem_access(MemOp::Ldr, dest, dest, 0, &e.ty);
            }
            ExprKind::AddrOf(inner) => self.lvalue_addr(inner, dest, line)?,
            ExprKind::Cond(c, a, b) => {
                let els = self.fresh_label("celse");
                let end = self.fresh_label("cend");
                self.branch_cond(c, &els, false)?;
                self.expr_to(a, dest)?;
                self.branch(Cond::Al, &end);
                self.label(els);
                self.expr_to(b, dest)?;
                self.label(end);
            }
        }
        Ok(())
    }

    /// Loads the value of a named variable.
    fn var_value(
        &mut self,
        name: &str,
        dest: Reg,
        ty: &Type,
        line: u32,
    ) -> Result<(), CompileError> {
        if let Some(slot) = self.lookup_local(name) {
            match &slot.ty {
                Type::Array(_, _) => self.add_sub_imm(DpOp::Add, dest, Reg::SP, slot.offset as u32),
                t => self.mem_access(MemOp::Ldr, dest, Reg::SP, slot.offset, t),
            }
            return Ok(());
        }
        if self.unit.global(name).is_some() {
            match ty {
                Type::Array(_, _) => self.load_addr(dest, name),
                t => {
                    self.load_addr(dest, name);
                    self.mem_access(MemOp::Ldr, dest, dest, 0, t);
                }
            }
            return Ok(());
        }
        if self.unit.function(name).is_some() || INTRINSICS.iter().any(|(n, _, _)| *n == name) {
            // Function used as a value: its address.
            self.load_addr(dest, name);
            return Ok(());
        }
        Err(err(line, format!("`{name}` not found at codegen time")))
    }

    /// Computes the address of an lvalue into `dest`.
    fn lvalue_addr(&mut self, e: &Expr, dest: Reg, line: u32) -> Result<(), CompileError> {
        match &e.kind {
            ExprKind::Var(name) => {
                if let Some(slot) = self.lookup_local(name) {
                    self.add_sub_imm(DpOp::Add, dest, Reg::SP, slot.offset as u32);
                } else if self.unit.global(name).is_some() || self.unit.function(name).is_some() {
                    self.load_addr(dest, name);
                } else {
                    return Err(err(line, format!("`{name}` not found at codegen time")));
                }
            }
            ExprKind::Deref(inner) => self.expr_to(inner, dest)?,
            ExprKind::Index(base, idx) => {
                self.expr_to(base, dest)?;
                let t = self.alloc_temp(line)?;
                self.expr_to(idx, t)?;
                let elem = &e.ty;
                self.scaled_add(dest, dest, t, elem, line)?;
                self.free_temp(t);
            }
            _ => return Err(err(line, "expression is not an lvalue")),
        }
        Ok(())
    }

    /// Stores `src` into the lvalue `lhs` (leaving `src` intact as the
    /// expression value).
    fn store_to_lvalue(&mut self, lhs: &Expr, src: Reg, line: u32) -> Result<(), CompileError> {
        match &lhs.kind {
            ExprKind::Var(name) => {
                if let Some(slot) = self.lookup_local(name) {
                    self.mem_access(MemOp::Str, src, Reg::SP, slot.offset, &slot.ty);
                    return Ok(());
                }
                if self.unit.global(name).is_some() {
                    let t = self.alloc_temp(line)?;
                    self.load_addr(t, name);
                    self.mem_access(MemOp::Str, src, t, 0, &lhs.ty);
                    self.free_temp(t);
                    return Ok(());
                }
                Err(err(line, format!("`{name}` not found at codegen time")))
            }
            _ => {
                let t = self.alloc_temp(line)?;
                self.lvalue_addr(lhs, t, line)?;
                self.mem_access(MemOp::Str, src, t, 0, &lhs.ty);
                self.free_temp(t);
                Ok(())
            }
        }
    }

    /// Loads the current value of the lvalue `e` into `dest`.
    fn load_from_lvalue(&mut self, e: &Expr, dest: Reg, line: u32) -> Result<(), CompileError> {
        match &e.kind {
            ExprKind::Var(name) => self.var_value(name, dest, &e.ty, line),
            _ => {
                self.lvalue_addr(e, dest, line)?;
                self.mem_access(MemOp::Ldr, dest, dest, 0, &e.ty);
                Ok(())
            }
        }
    }

    fn binary_to(
        &mut self,
        op: BinOp,
        lhs: &Expr,
        rhs: &Expr,
        dest: Reg,
        line: u32,
    ) -> Result<(), CompileError> {
        // Short-circuit operators via control flow.
        if matches!(op, BinOp::LAnd | BinOp::LOr) {
            let fail = self.fresh_label("sc");
            let end = self.fresh_label("scend");
            let whole = Expr {
                kind: ExprKind::Binary(op, Box::new(lhs.clone()), Box::new(rhs.clone())),
                line,
                ty: Type::Int,
            };
            self.branch_cond(&whole, &fail, false)?;
            self.emit(Instruction::mov_imm(dest, 1));
            self.branch(Cond::Al, &end);
            self.label(fail);
            self.emit(Instruction::mov_imm(dest, 0));
            self.label(end);
            return Ok(());
        }
        // Comparisons as values.
        if op.is_comparison() {
            let cond = comparison_cond(op);
            self.compare(lhs, rhs, dest, line)?;
            self.emit(Instruction::mov_imm(dest, 0));
            self.emit(Instruction::DataProc {
                cond,
                op: DpOp::Mov,
                set_flags: false,
                rd: dest,
                rn: Reg::r(0),
                op2: Operand2::Imm(1),
            });
            return Ok(());
        }
        // Pointer arithmetic.
        let lt = lhs.ty.decayed();
        let rt = rhs.ty.decayed();
        if op == BinOp::Add && lt.is_pointer_like() != rt.is_pointer_like() {
            let (ptr, int) = if lt.is_pointer_like() {
                (lhs, rhs)
            } else {
                (rhs, lhs)
            };
            let elem = if lt.is_pointer_like() {
                lt.pointee()
            } else {
                rt.pointee()
            }
            .expect("pointer operand has pointee")
            .clone();
            self.expr_to(ptr, dest)?;
            let t = self.alloc_temp(line)?;
            self.expr_to(int, t)?;
            self.scaled_add(dest, dest, t, &elem, line)?;
            self.free_temp(t);
            return Ok(());
        }
        if op == BinOp::Sub && lt.is_pointer_like() {
            let elem = lt.pointee().expect("pointer has pointee").clone();
            self.expr_to(lhs, dest)?;
            let t = self.alloc_temp(line)?;
            self.expr_to(rhs, t)?;
            if rt.is_pointer_like() {
                // ptr - ptr: byte difference scaled down.
                self.emit(Instruction::dp_reg(DpOp::Sub, dest, dest, t));
                if let Some(shift) = Self::scale_shift(&elem) {
                    if shift > 0 {
                        self.emit(Instruction::DataProc {
                            cond: Cond::Al,
                            op: DpOp::Mov,
                            set_flags: false,
                            rd: dest,
                            rn: Reg::r(0),
                            op2: Operand2::RegShift(dest, ShiftKind::Asr, shift),
                        });
                    }
                }
            } else {
                // ptr - int: negate then scaled add.
                self.emit(Instruction::dp_imm(DpOp::Rsb, t, t, 0));
                self.scaled_add(dest, dest, t, &elem, line)?;
            }
            self.free_temp(t);
            return Ok(());
        }
        // Division family: runtime calls.
        if matches!(op, BinOp::Div | BinOp::Mod) {
            let callee = if op == BinOp::Div {
                "__divsi3"
            } else {
                "__modsi3"
            };
            return self.runtime_binop(callee, lhs, rhs, dest, line);
        }
        // Shifts: immediate amounts use the barrel shifter, variable
        // amounts call the runtime.
        if matches!(op, BinOp::Shl | BinOp::Shr) {
            if let ExprKind::Int(n) = rhs.kind {
                if (0..32).contains(&n) {
                    self.expr_to(lhs, dest)?;
                    if n > 0 {
                        let kind = if op == BinOp::Shl {
                            ShiftKind::Lsl
                        } else {
                            ShiftKind::Asr
                        };
                        self.emit(Instruction::DataProc {
                            cond: Cond::Al,
                            op: DpOp::Mov,
                            set_flags: false,
                            rd: dest,
                            rn: Reg::r(0),
                            op2: Operand2::RegShift(dest, kind, n as u8),
                        });
                    }
                    return Ok(());
                }
            }
            let callee = if op == BinOp::Shl { "__ashl" } else { "__ashr" };
            return self.runtime_binop(callee, lhs, rhs, dest, line);
        }
        // Multiplication.
        if op == BinOp::Mul {
            self.expr_to(lhs, dest)?;
            let t = self.alloc_temp(line)?;
            self.expr_to(rhs, t)?;
            // ARM forbids rd == rm; (rd=dest, rm=t, rs=dest) satisfies it.
            self.emit(Instruction::Mul {
                cond: Cond::Al,
                set_flags: false,
                rd: dest,
                rm: t,
                rs: dest,
            });
            self.free_temp(t);
            return Ok(());
        }
        // Plain two-operand ALU ops, folding encodable immediates.
        let dp = match op {
            BinOp::Add => DpOp::Add,
            BinOp::Sub => DpOp::Sub,
            BinOp::BitAnd => DpOp::And,
            BinOp::BitOr => DpOp::Orr,
            BinOp::BitXor => DpOp::Eor,
            _ => unreachable!("all other operators handled above"),
        };
        self.expr_to(lhs, dest)?;
        if let ExprKind::Int(v) = rhs.kind {
            if is_encodable_imm(v as u32) {
                self.emit(Instruction::dp_imm(dp, dest, dest, v as u32));
                return Ok(());
            }
        }
        let t = self.alloc_temp(line)?;
        self.expr_to(rhs, t)?;
        self.emit(Instruction::dp_reg(dp, dest, dest, t));
        self.free_temp(t);
        Ok(())
    }

    /// Calls a two-argument runtime helper.
    fn runtime_binop(
        &mut self,
        callee: &str,
        lhs: &Expr,
        rhs: &Expr,
        dest: Reg,
        line: u32,
    ) -> Result<(), CompileError> {
        self.expr_to(lhs, dest)?;
        let t = self.alloc_temp(line)?;
        self.expr_to(rhs, t)?;
        self.emit(Instruction::mov_reg(Reg::r(0), dest));
        self.emit(Instruction::mov_reg(Reg::r(1), t));
        self.free_temp(t);
        self.call(callee);
        self.emit(Instruction::mov_reg(dest, Reg::r(0)));
        Ok(())
    }

    /// Emits `cmp lhs, rhs` with an immediate fold.
    fn compare(
        &mut self,
        lhs: &Expr,
        rhs: &Expr,
        scratch: Reg,
        line: u32,
    ) -> Result<(), CompileError> {
        self.expr_to(lhs, scratch)?;
        if let ExprKind::Int(v) = rhs.kind {
            if is_encodable_imm(v as u32) {
                self.emit(Instruction::DataProc {
                    cond: Cond::Al,
                    op: DpOp::Cmp,
                    set_flags: true,
                    rd: Reg::r(0),
                    rn: scratch,
                    op2: Operand2::Imm(v as u32),
                });
                return Ok(());
            }
        }
        let t = self.alloc_temp(line)?;
        self.expr_to(rhs, t)?;
        self.emit(Instruction::DataProc {
            cond: Cond::Al,
            op: DpOp::Cmp,
            set_flags: true,
            rd: Reg::r(0),
            rn: scratch,
            op2: Operand2::Reg(t),
        });
        self.free_temp(t);
        Ok(())
    }

    /// Emits a branch to `label` taken iff `e` is true (`jump_if` = true)
    /// or false (`jump_if` = false).
    fn branch_cond(&mut self, e: &Expr, label: &str, jump_if: bool) -> Result<(), CompileError> {
        let line = e.line;
        match &e.kind {
            ExprKind::Int(v) => {
                if (*v != 0) == jump_if {
                    self.branch(Cond::Al, label);
                }
            }
            ExprKind::Unary(UnOp::Not, inner) => self.branch_cond(inner, label, !jump_if)?,
            ExprKind::Binary(op, lhs, rhs) if op.is_comparison() => {
                let cond = comparison_cond(*op);
                let cond = if jump_if { cond } else { cond.invert() };
                let t = self.alloc_temp(line)?;
                self.compare(lhs, rhs, t, line)?;
                self.free_temp(t);
                self.branch(cond, label);
            }
            ExprKind::Binary(BinOp::LAnd, lhs, rhs) => {
                if jump_if {
                    let skip = self.fresh_label("and");
                    self.branch_cond(lhs, &skip, false)?;
                    self.branch_cond(rhs, label, true)?;
                    self.label(skip);
                } else {
                    self.branch_cond(lhs, label, false)?;
                    self.branch_cond(rhs, label, false)?;
                }
            }
            ExprKind::Binary(BinOp::LOr, lhs, rhs) => {
                if jump_if {
                    self.branch_cond(lhs, label, true)?;
                    self.branch_cond(rhs, label, true)?;
                } else {
                    let skip = self.fresh_label("or");
                    self.branch_cond(lhs, &skip, true)?;
                    self.branch_cond(rhs, label, false)?;
                    self.label(skip);
                }
            }
            _ => {
                let t = self.alloc_temp(line)?;
                self.expr_to(e, t)?;
                self.emit(Instruction::DataProc {
                    cond: Cond::Al,
                    op: DpOp::Cmp,
                    set_flags: true,
                    rd: Reg::r(0),
                    rn: t,
                    op2: Operand2::Imm(0),
                });
                self.free_temp(t);
                self.branch(if jump_if { Cond::Ne } else { Cond::Eq }, label);
            }
        }
        Ok(())
    }

    /// Generates a call expression into `dest`.
    fn call_to(
        &mut self,
        callee: &Expr,
        args: &[Expr],
        dest: Reg,
        line: u32,
    ) -> Result<(), CompileError> {
        // Evaluate arguments into temporaries first (they are callee-saved,
        // so nested calls cannot clobber them), then move into r0..r3.
        let mut temps = Vec::new();
        for a in args {
            let t = self.alloc_temp(line)?;
            self.expr_to(a, t)?;
            temps.push(t);
        }
        // Intrinsics lower to swi.
        if let ExprKind::Var(name) = &callee.kind {
            if let Some((_, _, svc)) = INTRINSICS
                .iter()
                .find(|(n, argc, _)| n == name && *argc == args.len())
                .filter(|_| self.unit.function(name).is_none())
            {
                for (i, t) in temps.iter().enumerate() {
                    self.emit(Instruction::mov_reg(Reg::r(i as u8), *t));
                }
                self.emit(Instruction::Swi {
                    cond: Cond::Al,
                    imm: *svc,
                });
                self.emit(Instruction::mov_reg(dest, Reg::r(0)));
                for t in temps {
                    self.free_temp(t);
                }
                return Ok(());
            }
            if self.unit.function(name).is_some() || is_runtime_function(name) {
                for (i, t) in temps.iter().enumerate() {
                    self.emit(Instruction::mov_reg(Reg::r(i as u8), *t));
                }
                for t in temps {
                    self.free_temp(t);
                }
                self.call(name);
                self.emit(Instruction::mov_reg(dest, Reg::r(0)));
                return Ok(());
            }
        }
        // Indirect call through a register.
        let target = self.alloc_temp(line)?;
        self.expr_to(callee, target)?;
        for (i, t) in temps.iter().enumerate() {
            self.emit(Instruction::mov_reg(Reg::r(i as u8), *t));
        }
        for t in temps {
            self.free_temp(t);
        }
        self.is_leaf = false;
        self.out.items.push(AsmItem::IndirectCall { target });
        self.free_temp(target);
        self.emit(Instruction::mov_reg(dest, Reg::r(0)));
        Ok(())
    }

    // ---------------------------------------------------------------
    // Statements
    // ---------------------------------------------------------------

    fn stmt(&mut self, s: &Stmt) -> Result<(), CompileError> {
        match s {
            Stmt::Block(stmts) => {
                self.scopes.push(HashMap::new());
                for st in stmts {
                    self.stmt(st)?;
                }
                self.scopes.pop();
            }
            Stmt::Decl {
                name,
                ty,
                init,
                line,
            } => {
                let slot = self.declare_local(name, ty.clone());
                if let Some(e) = init {
                    let t = self.alloc_temp(*line)?;
                    self.expr_to(e, t)?;
                    self.mem_access(MemOp::Str, t, Reg::SP, slot.offset, &slot.ty);
                    self.free_temp(t);
                }
            }
            Stmt::Expr(e) => {
                let t = self.alloc_temp(e.line)?;
                self.expr_to(e, t)?;
                self.free_temp(t);
            }
            Stmt::If { cond, then, els } => {
                let else_label = self.fresh_label("else");
                let end_label = self.fresh_label("endif");
                self.branch_cond(cond, &else_label, false)?;
                self.stmt(then)?;
                if let Some(e) = els {
                    self.branch(Cond::Al, &end_label);
                    self.label(else_label);
                    self.stmt(e)?;
                    self.label(end_label);
                } else {
                    self.label(else_label);
                }
            }
            Stmt::While { cond, body } => {
                let head = self.fresh_label("while");
                let end = self.fresh_label("wend");
                self.label(head.clone());
                self.branch_cond(cond, &end, false)?;
                self.loop_stack.push((end.clone(), head.clone()));
                self.stmt(body)?;
                self.loop_stack.pop();
                self.branch(Cond::Al, &head);
                self.label(end);
            }
            Stmt::DoWhile { body, cond } => {
                let head = self.fresh_label("do");
                let check = self.fresh_label("docheck");
                let end = self.fresh_label("doend");
                self.label(head.clone());
                self.loop_stack.push((end.clone(), check.clone()));
                self.stmt(body)?;
                self.loop_stack.pop();
                self.label(check);
                self.branch_cond(cond, &head, true)?;
                self.label(end);
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
            } => {
                self.scopes.push(HashMap::new());
                if let Some(i) = init {
                    self.stmt(i)?;
                }
                let head = self.fresh_label("for");
                let cont = self.fresh_label("fstep");
                let end = self.fresh_label("fend");
                self.label(head.clone());
                if let Some(c) = cond {
                    self.branch_cond(c, &end, false)?;
                }
                self.loop_stack.push((end.clone(), cont.clone()));
                self.stmt(body)?;
                self.loop_stack.pop();
                self.label(cont);
                if let Some(st) = step {
                    let t = self.alloc_temp(st.line)?;
                    self.expr_to(st, t)?;
                    self.free_temp(t);
                }
                self.branch(Cond::Al, &head);
                self.label(end);
                self.scopes.pop();
            }
            Stmt::Return(value, line) => {
                if let Some(e) = value {
                    let t = self.alloc_temp(*line)?;
                    self.expr_to(e, t)?;
                    self.emit(Instruction::mov_reg(Reg::r(0), t));
                    self.free_temp(t);
                }
                let ret = self.ret_label();
                self.branch(Cond::Al, &ret);
            }
            Stmt::Break(line) => {
                let target = self
                    .loop_stack
                    .last()
                    .ok_or_else(|| err(*line, "break outside loop"))?
                    .0
                    .clone();
                self.branch(Cond::Al, &target);
            }
            Stmt::Continue(line) => {
                let target = self
                    .loop_stack
                    .last()
                    .ok_or_else(|| err(*line, "continue outside loop"))?
                    .1
                    .clone();
                self.branch(Cond::Al, &target);
            }
        }
        Ok(())
    }

    /// Wraps the generated body with prologue/epilogue and returns the
    /// finished function.
    fn finish(mut self) -> Result<AsmFunction, CompileError> {
        let body = std::mem::take(&mut self.out.items);
        let frame = self.frame_used as u32;
        let saved = self.used_temps;
        let needs_lr = !self.is_leaf;
        let mut items = Vec::with_capacity(body.len() + 8);
        items.push(AsmItem::Label(self.func.name.clone()));
        let mut pushed = saved;
        if needs_lr {
            pushed.insert(Reg::LR);
        }
        if !pushed.is_empty() {
            items.push(AsmItem::Insn(Instruction::Block {
                cond: Cond::Al,
                op: MemOp::Str,
                rn: Reg::SP,
                writeback: true,
                mode: gpa_arm::BlockMode::Db,
                regs: pushed,
            }));
        }
        // Allocate the frame and spill parameters.
        self.out.items = items;
        if frame > 0 {
            self.add_sub_imm(DpOp::Sub, Reg::SP, Reg::SP, frame);
        }
        for (i, (name, _ty)) in self.func.params.iter().enumerate() {
            let slot = self
                .lookup_local(name)
                .expect("parameter slot was allocated");
            // Parameters are stored as full words; char loads read the LSB
            // (little-endian).
            self.emit(Instruction::str_imm(Reg::r(i as u8), Reg::SP, slot.offset));
        }
        let mut items = std::mem::take(&mut self.out.items);
        items.extend(body);
        items.push(AsmItem::Label(self.ret_label()));
        self.out.items = items;
        if frame > 0 {
            self.add_sub_imm(DpOp::Add, Reg::SP, Reg::SP, frame);
        }
        if !pushed.is_empty() {
            let mut popped = saved;
            if needs_lr {
                popped.insert(Reg::PC); // pop {…, pc} returns directly.
            }
            self.emit(Instruction::Block {
                cond: Cond::Al,
                op: MemOp::Ldr,
                rn: Reg::SP,
                writeback: true,
                mode: gpa_arm::BlockMode::Ia,
                regs: popped,
            });
            if !needs_lr {
                self.emit(Instruction::ret());
            }
        } else {
            self.emit(Instruction::ret());
        }
        Ok(self.out)
    }
}

/// The condition code under which a comparison is true.
fn comparison_cond(op: BinOp) -> Cond {
    match op {
        BinOp::Eq => Cond::Eq,
        BinOp::Ne => Cond::Ne,
        BinOp::Lt => Cond::Lt,
        BinOp::Le => Cond::Le,
        BinOp::Gt => Cond::Gt,
        BinOp::Ge => Cond::Ge,
        _ => unreachable!("not a comparison"),
    }
}

/// Runtime helpers that exist as assembly (not MiniC) and therefore are not
/// in the unit's function list.
fn is_runtime_function(name: &str) -> bool {
    matches!(name, "__ashl" | "__ashr")
}

/// Generates assembly for every function in the unit.
///
/// # Errors
///
/// Returns a codegen-stage [`CompileError`] for constructs the template
/// generator cannot express (over-deep expressions, exotic element sizes).
pub fn generate(unit: &Unit) -> Result<Vec<AsmFunction>, CompileError> {
    let mut functions = Vec::with_capacity(unit.functions.len());
    let mut string_counter = 0usize;
    for f in &unit.functions {
        let mut gen = FnGen {
            unit,
            func: f,
            out: AsmFunction::new(f.name.clone()),
            scopes: vec![HashMap::new()],
            frame_used: 0,
            free_temps: TEMP_REGS.iter().rev().copied().collect(),
            used_temps: RegSet::EMPTY,
            label_counter: 0,
            string_counter: &mut string_counter,
            loop_stack: Vec::new(),
            is_leaf: true,
        };
        // Parameter slots first, in order.
        for (name, ty) in &f.params {
            // char parameters occupy a full word slot.
            let slot_ty = if ty.size() < 4 { Type::Int } else { ty.clone() };
            let slot = Slot {
                offset: gen.alloc_slot(&slot_ty),
                ty: ty.clone(),
            };
            gen.scopes[0].insert(name.clone(), slot);
        }
        gen.stmt(&f.body)?;
        functions.push(gen.finish()?);
    }
    Ok(functions)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse;
    use crate::sema::analyze;

    fn gen(src: &str) -> Vec<AsmFunction> {
        generate(&analyze(parse(&lex(src).unwrap()).unwrap()).unwrap()).unwrap()
    }

    #[test]
    fn trivial_function_shape() {
        let fns = gen("int f() { return 7; }");
        assert_eq!(fns.len(), 1);
        let f = &fns[0];
        assert_eq!(f.items[0], AsmItem::Label("f".into()));
        // Leaf function: returns with bx lr.
        assert!(matches!(
            f.items.last(),
            Some(AsmItem::Insn(Instruction::Bx { .. }))
        ));
    }

    #[test]
    fn call_marks_non_leaf() {
        let fns = gen("int g() { return 1; } int f() { return g(); }");
        let f = fns.iter().find(|f| f.name == "f").unwrap();
        assert!(f.calls.contains(&"g".to_string()));
        // Non-leaf functions push and pop lr/pc.
        assert!(f
            .items
            .iter()
            .any(|i| matches!(i, AsmItem::Insn(Instruction::Block { .. }))));
    }

    #[test]
    fn globals_use_literal_loads() {
        let fns = gen("int counter; int f() { counter = counter + 1; return counter; }");
        let f = &fns[0];
        assert!(f
            .items
            .iter()
            .any(|i| matches!(i, AsmItem::LoadAddr { symbol, .. } if symbol == "counter")));
        assert!(f.symbol_refs.contains(&"counter".to_string()));
    }

    #[test]
    fn strings_are_collected() {
        let fns = gen("int f(char *s) { return 0; } int main() { f(\"hi\"); return 0; }");
        let main = fns.iter().find(|f| f.name == "main").unwrap();
        assert_eq!(main.strings.len(), 1);
        assert_eq!(main.strings[0].1, b"hi\0");
    }

    #[test]
    fn division_calls_runtime() {
        let fns = gen("int f(int a, int b) { return a / b + a % b; }");
        let f = &fns[0];
        assert!(f.calls.contains(&"__divsi3".to_string()));
        assert!(f.calls.contains(&"__modsi3".to_string()));
    }

    #[test]
    fn constant_shift_uses_barrel_shifter() {
        let fns = gen("int f(int a) { return a << 2; }");
        let f = &fns[0];
        assert!(f.calls.is_empty());
        assert!(f.items.iter().any(|i| matches!(
            i,
            AsmItem::Insn(Instruction::DataProc {
                op2: Operand2::RegShift(_, ShiftKind::Lsl, 2),
                ..
            })
        )));
    }

    #[test]
    fn variable_shift_calls_runtime() {
        let fns = gen("int f(int a, int n) { return a << n; }");
        assert!(fns[0].calls.contains(&"__ashl".to_string()));
    }

    #[test]
    fn intrinsics_lower_to_swi() {
        let fns = gen("int main() { _putc(65); return 0; }");
        let main = &fns[0];
        assert!(main
            .items
            .iter()
            .any(|i| matches!(i, AsmItem::Insn(Instruction::Swi { imm: 1, .. }))));
        assert!(main.calls.is_empty());
    }

    #[test]
    fn indirect_call_uses_idiom() {
        let fns = gen("int twice(int x) { return x + x; }\n\
             int apply(int f, int x) { return f(x); }");
        let apply = fns.iter().find(|f| f.name == "apply").unwrap();
        assert!(apply
            .items
            .iter()
            .any(|i| matches!(i, AsmItem::IndirectCall { .. })));
    }

    #[test]
    fn function_as_value_loads_address() {
        let fns = gen("int twice(int x) { return x + x; }\n\
             int main() { int f = twice; return f; }");
        let main = fns.iter().find(|f| f.name == "main").unwrap();
        assert!(main.symbol_refs.contains(&"twice".to_string()));
    }

    #[test]
    fn errors_on_overdeep_expression() {
        // 9 nested calls all needing live temporaries.
        let src = "int f(int x) { return x; }\n\
                   int main() { return f(1+f(1+f(1+f(1+f(1+f(1+f(1+f(1+f(1))))))))); }";
        let unit = analyze(parse(&lex(src).unwrap()).unwrap()).unwrap();
        assert!(generate(&unit).is_err());
    }
}
