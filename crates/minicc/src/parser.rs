//! Recursive-descent parser for MiniC.
//!
//! Compound assignments (`a += b`) are desugared to plain assignments with
//! the left-hand side duplicated; since MiniC lvalues have no side effects
//! other than through calls (which cannot appear in an lvalue), the
//! duplication is semantics-preserving.

use crate::ast::*;
use crate::lexer::{Token, TokenKind};
use crate::CompileError;

struct Parser<'a> {
    tokens: &'a [Token],
    pos: usize,
}

fn err(line: u32, message: impl Into<String>) -> CompileError {
    CompileError::new("parse", format!("line {line}: {}", message.into()))
}

impl<'a> Parser<'a> {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn peek2(&self) -> &TokenKind {
        &self.tokens[(self.pos + 1).min(self.tokens.len() - 1)].kind
    }

    fn line(&self) -> u32 {
        self.tokens[self.pos].line
    }

    fn bump(&mut self) -> &TokenKind {
        let t = &self.tokens[self.pos].kind;
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn eat_punct(&mut self, p: &str) -> bool {
        if matches!(self.peek(), TokenKind::Punct(q) if *q == p) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, p: &str) -> Result<(), CompileError> {
        if self.eat_punct(p) {
            Ok(())
        } else {
            Err(err(
                self.line(),
                format!("expected `{p}`, found {:?}", self.peek()),
            ))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), TokenKind::Ident(s) if s == kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_ident(&mut self) -> Result<String, CompileError> {
        let line = self.line();
        match self.bump() {
            TokenKind::Ident(s) => Ok(s.clone()),
            other => Err(err(line, format!("expected identifier, found {other:?}"))),
        }
    }

    /// Parses a base type keyword if present (`int`, `char`, `void`).
    fn try_base_type(&mut self) -> Option<Type> {
        let ty = match self.peek() {
            TokenKind::Ident(s) if s == "int" => Type::Int,
            TokenKind::Ident(s) if s == "char" => Type::Char,
            TokenKind::Ident(s) if s == "void" => Type::Void,
            _ => return None,
        };
        self.pos += 1;
        Some(ty)
    }

    /// Wraps a base type in pointer stars.
    fn pointer_suffix(&mut self, mut ty: Type) -> Type {
        while self.eat_punct("*") {
            ty = Type::Ptr(Box::new(ty));
        }
        ty
    }

    fn const_int(&mut self) -> Result<i64, CompileError> {
        let line = self.line();
        let neg = self.eat_punct("-");
        match self.bump() {
            TokenKind::Int(v) => Ok(if neg { -*v } else { *v }),
            other => Err(err(line, format!("expected constant, found {other:?}"))),
        }
    }

    fn global_init(&mut self) -> Result<GlobalInit, CompileError> {
        if self.eat_punct("{") {
            let mut items = Vec::new();
            if !self.eat_punct("}") {
                loop {
                    items.push(self.const_int()?);
                    if !self.eat_punct(",") {
                        break;
                    }
                    // Allow a trailing comma before `}`.
                    if matches!(self.peek(), TokenKind::Punct("}")) {
                        break;
                    }
                }
                self.expect_punct("}")?;
            }
            return Ok(GlobalInit::List(items));
        }
        if let TokenKind::Str(s) = self.peek() {
            let s = s.clone();
            self.pos += 1;
            return Ok(GlobalInit::Str(s));
        }
        Ok(GlobalInit::Scalar(self.const_int()?))
    }

    fn unit(&mut self) -> Result<Unit, CompileError> {
        let mut unit = Unit::default();
        while !matches!(self.peek(), TokenKind::Eof) {
            let line = self.line();
            let base = self
                .try_base_type()
                .ok_or_else(|| err(line, "expected a declaration"))?;
            let ty = self.pointer_suffix(base);
            let name = self.expect_ident()?;
            if self.eat_punct("(") {
                // Function definition or forward declaration.
                let params = self.params()?;
                if self.eat_punct(";") {
                    continue; // Forward declaration: bodies are global anyway.
                }
                let body = self.block()?;
                unit.functions.push(Function {
                    name,
                    ret: ty,
                    params,
                    body,
                    line,
                });
            } else {
                // Global variable(s).
                let mut name = name;
                let mut ty = ty;
                loop {
                    if self.eat_punct("[") {
                        let n = self.const_int()?;
                        self.expect_punct("]")?;
                        ty = Type::Array(Box::new(ty), n as usize);
                    }
                    let init = if self.eat_punct("=") {
                        Some(self.global_init()?)
                    } else {
                        None
                    };
                    unit.globals.push(Global {
                        name,
                        ty: ty.clone(),
                        init,
                        line,
                    });
                    if !self.eat_punct(",") {
                        break;
                    }
                    // Further declarators share the base type, not the
                    // array suffix.
                    ty = match &ty {
                        Type::Array(elem, _) => (**elem).clone(),
                        other => other.clone(),
                    };
                    ty = self.pointer_suffix(ty);
                    name = self.expect_ident()?;
                }
                self.expect_punct(";")?;
            }
        }
        Ok(unit)
    }

    fn params(&mut self) -> Result<Vec<(String, Type)>, CompileError> {
        let mut params = Vec::new();
        if self.eat_punct(")") {
            return Ok(params);
        }
        if matches!(self.peek(), TokenKind::Ident(s) if s == "void")
            && matches!(self.peek2(), TokenKind::Punct(")"))
        {
            self.pos += 1;
            self.expect_punct(")")?;
            return Ok(params);
        }
        loop {
            let line = self.line();
            let base = self
                .try_base_type()
                .ok_or_else(|| err(line, "expected parameter type"))?;
            let ty = self.pointer_suffix(base);
            let name = self.expect_ident()?;
            // Array parameters decay to pointers.
            let ty = if self.eat_punct("[") {
                if !matches!(self.peek(), TokenKind::Punct("]")) {
                    let _ = self.const_int()?;
                }
                self.expect_punct("]")?;
                Type::Ptr(Box::new(ty))
            } else {
                ty
            };
            params.push((name, ty));
            if !self.eat_punct(",") {
                break;
            }
        }
        self.expect_punct(")")?;
        Ok(params)
    }

    fn block(&mut self) -> Result<Stmt, CompileError> {
        self.expect_punct("{")?;
        let mut stmts = Vec::new();
        while !self.eat_punct("}") {
            if matches!(self.peek(), TokenKind::Eof) {
                return Err(err(self.line(), "unterminated block"));
            }
            stmts.push(self.stmt()?);
        }
        Ok(Stmt::Block(stmts))
    }

    fn stmt(&mut self) -> Result<Stmt, CompileError> {
        let line = self.line();
        if matches!(self.peek(), TokenKind::Punct("{")) {
            return self.block();
        }
        if self.eat_keyword("if") {
            self.expect_punct("(")?;
            let cond = self.expr()?;
            self.expect_punct(")")?;
            let then = Box::new(self.stmt()?);
            let els = if self.eat_keyword("else") {
                Some(Box::new(self.stmt()?))
            } else {
                None
            };
            return Ok(Stmt::If { cond, then, els });
        }
        if self.eat_keyword("while") {
            self.expect_punct("(")?;
            let cond = self.expr()?;
            self.expect_punct(")")?;
            let body = Box::new(self.stmt()?);
            return Ok(Stmt::While { cond, body });
        }
        if self.eat_keyword("do") {
            let body = Box::new(self.stmt()?);
            if !self.eat_keyword("while") {
                return Err(err(self.line(), "expected `while` after `do` body"));
            }
            self.expect_punct("(")?;
            let cond = self.expr()?;
            self.expect_punct(")")?;
            self.expect_punct(";")?;
            return Ok(Stmt::DoWhile { body, cond });
        }
        if self.eat_keyword("for") {
            self.expect_punct("(")?;
            let init = if self.eat_punct(";") {
                None
            } else {
                let s = if self.is_decl_start() {
                    self.decl_stmt()?
                } else {
                    Stmt::Expr(self.expr()?)
                };
                self.expect_punct(";")?;
                Some(Box::new(s))
            };
            let cond = if matches!(self.peek(), TokenKind::Punct(";")) {
                None
            } else {
                Some(self.expr()?)
            };
            self.expect_punct(";")?;
            let step = if matches!(self.peek(), TokenKind::Punct(")")) {
                None
            } else {
                Some(self.expr()?)
            };
            self.expect_punct(")")?;
            let body = Box::new(self.stmt()?);
            return Ok(Stmt::For {
                init,
                cond,
                step,
                body,
            });
        }
        if self.eat_keyword("return") {
            let value = if matches!(self.peek(), TokenKind::Punct(";")) {
                None
            } else {
                Some(self.expr()?)
            };
            self.expect_punct(";")?;
            return Ok(Stmt::Return(value, line));
        }
        if self.eat_keyword("break") {
            self.expect_punct(";")?;
            return Ok(Stmt::Break(line));
        }
        if self.eat_keyword("continue") {
            self.expect_punct(";")?;
            return Ok(Stmt::Continue(line));
        }
        if self.is_decl_start() {
            let s = self.decl_stmt()?;
            self.expect_punct(";")?;
            return Ok(s);
        }
        let e = self.expr()?;
        self.expect_punct(";")?;
        Ok(Stmt::Expr(e))
    }

    fn is_decl_start(&self) -> bool {
        matches!(self.peek(), TokenKind::Ident(s) if s == "int" || s == "char" || s == "void")
    }

    /// One or more local declarators, without the trailing `;`.
    fn decl_stmt(&mut self) -> Result<Stmt, CompileError> {
        let line = self.line();
        let base = self
            .try_base_type()
            .ok_or_else(|| err(line, "expected type"))?;
        let mut decls = Vec::new();
        loop {
            let ty = self.pointer_suffix(base.clone());
            let name = self.expect_ident()?;
            let ty = if self.eat_punct("[") {
                let n = self.const_int()?;
                self.expect_punct("]")?;
                Type::Array(Box::new(ty), n as usize)
            } else {
                ty
            };
            let init = if self.eat_punct("=") {
                Some(self.expr()?)
            } else {
                None
            };
            decls.push(Stmt::Decl {
                name,
                ty,
                init,
                line,
            });
            if !self.eat_punct(",") {
                break;
            }
        }
        Ok(if decls.len() == 1 {
            decls.pop().expect("one declarator")
        } else {
            Stmt::Block(decls)
        })
    }

    fn expr(&mut self) -> Result<Expr, CompileError> {
        self.assignment()
    }

    fn assignment(&mut self) -> Result<Expr, CompileError> {
        let lhs = self.conditional()?;
        let line = self.line();
        let compound = |op: BinOp| Some(op);
        let binop = match self.peek() {
            TokenKind::Punct("=") => None,
            TokenKind::Punct("+=") => compound(BinOp::Add),
            TokenKind::Punct("-=") => compound(BinOp::Sub),
            TokenKind::Punct("*=") => compound(BinOp::Mul),
            TokenKind::Punct("/=") => compound(BinOp::Div),
            TokenKind::Punct("%=") => compound(BinOp::Mod),
            TokenKind::Punct("&=") => compound(BinOp::BitAnd),
            TokenKind::Punct("|=") => compound(BinOp::BitOr),
            TokenKind::Punct("^=") => compound(BinOp::BitXor),
            TokenKind::Punct("<<=") => compound(BinOp::Shl),
            TokenKind::Punct(">>=") => compound(BinOp::Shr),
            _ => return Ok(lhs),
        };
        self.pos += 1;
        let rhs = self.assignment()?;
        let value = match binop {
            None => rhs,
            Some(op) => Expr::new(
                ExprKind::Binary(op, Box::new(lhs.clone()), Box::new(rhs)),
                line,
            ),
        };
        Ok(Expr::new(
            ExprKind::Assign(Box::new(lhs), Box::new(value)),
            line,
        ))
    }

    fn conditional(&mut self) -> Result<Expr, CompileError> {
        let cond = self.binary(0)?;
        if self.eat_punct("?") {
            let line = self.line();
            let then = self.expr()?;
            self.expect_punct(":")?;
            let els = self.conditional()?;
            return Ok(Expr::new(
                ExprKind::Cond(Box::new(cond), Box::new(then), Box::new(els)),
                line,
            ));
        }
        Ok(cond)
    }

    /// Precedence-climbing for binary operators; `level` indexes
    /// [`BIN_LEVELS`].
    fn binary(&mut self, level: usize) -> Result<Expr, CompileError> {
        const BIN_LEVELS: &[&[(&str, BinOp)]] = &[
            &[("||", BinOp::LOr)],
            &[("&&", BinOp::LAnd)],
            &[("|", BinOp::BitOr)],
            &[("^", BinOp::BitXor)],
            &[("&", BinOp::BitAnd)],
            &[("==", BinOp::Eq), ("!=", BinOp::Ne)],
            &[
                ("<=", BinOp::Le),
                (">=", BinOp::Ge),
                ("<", BinOp::Lt),
                (">", BinOp::Gt),
            ],
            &[("<<", BinOp::Shl), (">>", BinOp::Shr)],
            &[("+", BinOp::Add), ("-", BinOp::Sub)],
            &[("*", BinOp::Mul), ("/", BinOp::Div), ("%", BinOp::Mod)],
        ];
        if level == BIN_LEVELS.len() {
            return self.unary();
        }
        let mut lhs = self.binary(level + 1)?;
        loop {
            let line = self.line();
            let mut matched = None;
            for (p, op) in BIN_LEVELS[level] {
                if matches!(self.peek(), TokenKind::Punct(q) if q == p) {
                    matched = Some(*op);
                    self.pos += 1;
                    break;
                }
            }
            let Some(op) = matched else { return Ok(lhs) };
            let rhs = self.binary(level + 1)?;
            lhs = Expr::new(ExprKind::Binary(op, Box::new(lhs), Box::new(rhs)), line);
        }
    }

    fn unary(&mut self) -> Result<Expr, CompileError> {
        let line = self.line();
        if self.eat_punct("-") {
            let e = self.unary()?;
            return Ok(Expr::new(ExprKind::Unary(UnOp::Neg, Box::new(e)), line));
        }
        if self.eat_punct("!") {
            let e = self.unary()?;
            return Ok(Expr::new(ExprKind::Unary(UnOp::Not, Box::new(e)), line));
        }
        if self.eat_punct("~") {
            let e = self.unary()?;
            return Ok(Expr::new(ExprKind::Unary(UnOp::BitNot, Box::new(e)), line));
        }
        if self.eat_punct("*") {
            let e = self.unary()?;
            return Ok(Expr::new(ExprKind::Deref(Box::new(e)), line));
        }
        if self.eat_punct("&") {
            let e = self.unary()?;
            return Ok(Expr::new(ExprKind::AddrOf(Box::new(e)), line));
        }
        if self.eat_punct("++") {
            let e = self.unary()?;
            return Ok(Expr::new(
                ExprKind::IncDec {
                    target: Box::new(e),
                    delta: 1,
                    postfix: false,
                },
                line,
            ));
        }
        if self.eat_punct("--") {
            let e = self.unary()?;
            return Ok(Expr::new(
                ExprKind::IncDec {
                    target: Box::new(e),
                    delta: -1,
                    postfix: false,
                },
                line,
            ));
        }
        self.postfix()
    }

    fn postfix(&mut self) -> Result<Expr, CompileError> {
        let mut e = self.primary()?;
        loop {
            let line = self.line();
            if self.eat_punct("[") {
                let idx = self.expr()?;
                self.expect_punct("]")?;
                e = Expr::new(ExprKind::Index(Box::new(e), Box::new(idx)), line);
            } else if self.eat_punct("(") {
                let mut args = Vec::new();
                if !self.eat_punct(")") {
                    loop {
                        args.push(self.expr()?);
                        if !self.eat_punct(",") {
                            break;
                        }
                    }
                    self.expect_punct(")")?;
                }
                e = Expr::new(ExprKind::Call(Box::new(e), args), line);
            } else if self.eat_punct("++") {
                e = Expr::new(
                    ExprKind::IncDec {
                        target: Box::new(e),
                        delta: 1,
                        postfix: true,
                    },
                    line,
                );
            } else if self.eat_punct("--") {
                e = Expr::new(
                    ExprKind::IncDec {
                        target: Box::new(e),
                        delta: -1,
                        postfix: true,
                    },
                    line,
                );
            } else {
                return Ok(e);
            }
        }
    }

    fn primary(&mut self) -> Result<Expr, CompileError> {
        let line = self.line();
        if self.eat_punct("(") {
            let e = self.expr()?;
            self.expect_punct(")")?;
            return Ok(e);
        }
        match self.bump() {
            TokenKind::Int(v) => Ok(Expr::new(ExprKind::Int(*v), line)),
            TokenKind::Str(s) => Ok(Expr::new(ExprKind::Str(s.clone()), line)),
            TokenKind::Ident(name) => Ok(Expr::new(ExprKind::Var(name.clone()), line)),
            other => Err(err(line, format!("expected expression, found {other:?}"))),
        }
    }
}

/// Parses a token stream into a translation unit.
///
/// # Errors
///
/// Returns a parse-stage [`CompileError`] with the offending line.
pub fn parse(tokens: &[Token]) -> Result<Unit, CompileError> {
    let mut parser = Parser { tokens, pos: 0 };
    parser.unit()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> Unit {
        parse(&lex(src).unwrap()).unwrap()
    }

    #[test]
    fn parses_function_and_globals() {
        let unit = parse_src(
            "int table[4] = {1, 2, 3, 4};\n\
             char *msg = \"hi\";\n\
             int add(int a, int b) { return a + b; }",
        );
        assert_eq!(unit.globals.len(), 2);
        assert_eq!(unit.functions.len(), 1);
        assert_eq!(unit.functions[0].params.len(), 2);
        assert_eq!(
            unit.globals[0].init,
            Some(GlobalInit::List(vec![1, 2, 3, 4]))
        );
    }

    #[test]
    fn precedence() {
        let unit = parse_src("int f() { return 1 + 2 * 3; }");
        let Stmt::Block(body) = &unit.functions[0].body else {
            panic!()
        };
        let Stmt::Return(Some(e), _) = &body[0] else {
            panic!()
        };
        // 1 + (2 * 3)
        let ExprKind::Binary(BinOp::Add, _, rhs) = &e.kind else {
            panic!("got {e:?}")
        };
        assert!(matches!(rhs.kind, ExprKind::Binary(BinOp::Mul, _, _)));
    }

    #[test]
    fn compound_assignment_desugars() {
        let unit = parse_src("int f(int x) { x += 2; return x; }");
        let Stmt::Block(body) = &unit.functions[0].body else {
            panic!()
        };
        let Stmt::Expr(e) = &body[0] else { panic!() };
        let ExprKind::Assign(_, value) = &e.kind else {
            panic!()
        };
        assert!(matches!(value.kind, ExprKind::Binary(BinOp::Add, _, _)));
    }

    #[test]
    fn control_flow_statements() {
        let unit = parse_src(
            "int f(int n) {\n\
               int s = 0;\n\
               for (int i = 0; i < n; i++) { if (i % 2) continue; s += i; }\n\
               while (n > 0) { n--; if (n == 3) break; }\n\
               do { s++; } while (s < 10);\n\
               return s ? s : -1;\n\
             }",
        );
        assert_eq!(unit.functions.len(), 1);
    }

    #[test]
    fn pointers_and_arrays() {
        let unit = parse_src(
            "int g(int *p, char buf[]) { *p = buf[0]; return p[1]; }\n\
             int arr[8];\n\
             int use() { return arr[2] + *(arr + 3); }",
        );
        assert_eq!(
            unit.functions[0].params[1].1,
            Type::Ptr(Box::new(Type::Char))
        );
    }

    #[test]
    fn function_pointers_parse() {
        parse_src(
            "int apply(int f, int x) { return f(x); }\n\
             int twice(int x) { return x * 2; }\n\
             int main() { return apply(twice, 4); }",
        );
    }

    #[test]
    fn multiple_declarators() {
        let unit = parse_src("int f() { int a = 1, b = 2; return a + b; } int x, y;");
        assert_eq!(unit.globals.len(), 2);
    }

    #[test]
    fn errors() {
        assert!(parse(&lex("int f( {").unwrap()).is_err());
        assert!(parse(&lex("int f() { return }").unwrap()).is_err());
        assert!(parse(&lex("banana").unwrap()).is_err());
        assert!(parse(&lex("int f() { if x }").unwrap()).is_err());
        assert!(parse(&lex("int f() {").unwrap()).is_err());
    }
}
