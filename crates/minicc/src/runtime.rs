//! The bundled runtime library.
//!
//! Mirrors the paper's dietlibc setup: a small, statically linked C library
//! whose functions are only pulled into the image when reachable
//! (selective linking), written to share code rather than duplicate it.
//! Most of it is MiniC ([`MINILIBC_SOURCE`]); the program entry point and
//! the variable-amount shift helpers — which need register-shift forms the
//! code generator never emits — are hand-written assembly
//! ([`asm_functions`]).

use gpa_arm::{Cond, Instruction, Reg};

use crate::asm::{AsmFunction, AsmItem};

/// The MiniC portion of the runtime library, appended to every user
/// program by [`crate::compile`].
///
/// Contents: software division/modulo (the ARM subset has no divide
/// instruction), character/string output built on the `_putc` intrinsic,
/// string/memory helpers, a bump allocator over `_sbrk`, and a small LCG.
pub const MINILIBC_SOURCE: &str = r#"
// ---- minilibc (bundled runtime) ----

int __udivmodsi4(int n, int d, int want_mod) {
    int q = 0;
    int bit = 1;
    if (d == 0) { return 0; }
    while (d < n && d < 0x40000000 && (d << 1) > 0) {
        d = d << 1;
        bit = bit << 1;
    }
    while (bit > 0) {
        if (n >= d) {
            n = n - d;
            q = q | bit;
        }
        d = d >> 1;
        bit = bit >> 1;
    }
    if (want_mod) { return n; }
    return q;
}

int __divsi3(int a, int b) {
    int neg = 0;
    if (a < 0) { a = -a; neg = 1 - neg; }
    if (b < 0) { b = -b; neg = 1 - neg; }
    int q = __udivmodsi4(a, b, 0);
    if (neg) { return -q; }
    return q;
}

int __modsi3(int a, int b) {
    int neg = 0;
    if (a < 0) { a = -a; neg = 1; }
    if (b < 0) { b = -b; }
    int r = __udivmodsi4(a, b, 1);
    if (neg) { return -r; }
    return r;
}

int putchar(int c) {
    _putc(c);
    return c;
}

int putstr(char *s) {
    int i = 0;
    while (s[i]) {
        _putc(s[i]);
        i++;
    }
    return i;
}

int puts(char *s) {
    putstr(s);
    _putc('\n');
    return 0;
}

int putint(int n) {
    if (n < 0) {
        _putc('-');
        n = -n;
    }
    if (n >= 10) {
        putint(n / 10);
    }
    _putc('0' + n % 10);
    return 0;
}

int puthex(int n) {
    int i = 28;
    while (i >= 0) {
        int d = (n >> i) & 15;
        if (d < 10) { _putc('0' + d); } else { _putc('a' + d - 10); }
        i = i - 4;
    }
    return 0;
}

int getchar() {
    return _getc();
}

int memcpy(char *dst, char *src, int n) {
    int i;
    for (i = 0; i < n; i++) {
        dst[i] = src[i];
    }
    return 0;
}

int memset(char *p, int v, int n) {
    int i;
    for (i = 0; i < n; i++) {
        p[i] = v;
    }
    return 0;
}

int strlen(char *s) {
    int i = 0;
    while (s[i]) {
        i++;
    }
    return i;
}

int strcmp(char *a, char *b) {
    int i = 0;
    while (a[i] && a[i] == b[i]) {
        i++;
    }
    return a[i] - b[i];
}

int strncmp(char *a, char *b, int n) {
    int i = 0;
    while (i < n && a[i] && a[i] == b[i]) {
        i++;
    }
    if (i == n) { return 0; }
    return a[i] - b[i];
}

int strcpy(char *dst, char *src) {
    int i = 0;
    while (src[i]) {
        dst[i] = src[i];
        i++;
    }
    dst[i] = 0;
    return i;
}

int atoi(char *s) {
    int v = 0;
    int i = 0;
    int neg = 0;
    if (s[0] == '-') { neg = 1; i = 1; }
    while (s[i] >= '0' && s[i] <= '9') {
        v = v * 10 + (s[i] - '0');
        i++;
    }
    if (neg) { return -v; }
    return v;
}

int abs(int x) {
    if (x < 0) { return -x; }
    return x;
}

int __rand_state = 1;

int srand(int seed) {
    __rand_state = seed;
    return 0;
}

int rand() {
    __rand_state = __rand_state * 1103515245 + 12345;
    return (__rand_state >> 16) & 0x7fff;
}

char *malloc(int n) {
    return _sbrk((n + 7) & ~7);
}

int memcmp(char *a, char *b, int n) {
    int i;
    for (i = 0; i < n; i++) {
        if (a[i] != b[i]) { return a[i] - b[i]; }
    }
    return 0;
}

int strcat(char *dst, char *src) {
    int n = strlen(dst);
    strcpy(dst + n, src);
    return n;
}

char *strchr(char *s, int c) {
    int i = 0;
    while (s[i]) {
        if (s[i] == c) { return s + i; }
        i++;
    }
    return 0;
}

int itoa(int v, char *out) {
    int i = 0;
    int neg = 0;
    if (v < 0) { neg = 1; v = -v; }
    if (v == 0) { out[i] = '0'; i++; }
    while (v > 0) {
        out[i] = '0' + v % 10;
        i++;
        v = v / 10;
    }
    if (neg) { out[i] = '-'; i++; }
    out[i] = 0;
    // Reverse in place.
    int a = 0;
    int b = i - 1;
    while (a < b) {
        char tmp = out[a];
        out[a] = out[b];
        out[b] = tmp;
        a++;
        b--;
    }
    return i;
}
"#;

/// Hand-written assembly runtime routines: `_start`, `__ashl`, `__ashr`.
///
/// `_start` calls `main` and passes its return value to the exit system
/// call. The shift helpers take the value in `r0` and the amount in `r1`
/// and shift one bit per loop iteration (amounts ≤ 0 return the value
/// unchanged; amounts ≥ 32 drain to 0 / sign).
pub fn asm_functions() -> Vec<AsmFunction> {
    let mut start = AsmFunction::new("_start");
    start.items = vec![
        AsmItem::Label("_start".into()),
        AsmItem::BranchTo {
            cond: Cond::Al,
            link: true,
            label: "main".into(),
        },
        AsmItem::Insn(Instruction::Swi {
            cond: Cond::Al,
            imm: 0,
        }),
    ];
    start.calls.push("main".into());

    vec![
        start,
        shift_helper("__ashl", "lsl"),
        shift_helper("__ashr", "asr"),
    ]
}

fn shift_helper(name: &str, op: &str) -> AsmFunction {
    let loop_label = format!(".L{name}_loop");
    let mut f = AsmFunction::new(name);
    f.items = vec![
        AsmItem::Label(name.to_owned()),
        AsmItem::Insn("cmp r1, #0".parse().expect("valid asm")),
        AsmItem::Insn("bxle lr".parse().expect("valid asm")),
        AsmItem::Label(loop_label.clone()),
        AsmItem::Insn(format!("mov r0, r0, {op} #1").parse().expect("valid asm")),
        AsmItem::Insn("subs r1, r1, #1".parse().expect("valid asm")),
        AsmItem::BranchTo {
            cond: Cond::Gt,
            link: false,
            label: loop_label,
        },
        AsmItem::Insn(Instruction::Bx {
            cond: Cond::Al,
            rm: Reg::LR,
        }),
    ];
    f
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minilibc_parses_and_analyzes() {
        let tokens = crate::lexer::lex(MINILIBC_SOURCE).unwrap();
        let unit = crate::parser::parse(&tokens).unwrap();
        let unit = crate::sema::analyze(unit).unwrap();
        assert!(unit.function("__divsi3").is_some());
        assert!(unit.function("puts").is_some());
        assert!(unit.function("malloc").is_some());
        crate::codegen::generate(&unit).unwrap();
    }

    #[test]
    fn asm_functions_have_entry_labels() {
        for f in asm_functions() {
            assert_eq!(f.items[0], AsmItem::Label(f.name.clone()));
            assert!(f.encoded_words() > 0);
        }
    }
}
