//! The MiniC lexer.

use crate::CompileError;

/// A lexical token with its source line (for diagnostics).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Token {
    /// The token proper.
    pub kind: TokenKind,
    /// 1-based source line.
    pub line: u32,
}

/// The kinds of MiniC tokens.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword.
    Ident(String),
    /// An integer literal (decimal, hex `0x…`, or character `'c'`).
    Int(i64),
    /// A string literal (escapes already resolved).
    Str(String),
    /// Any punctuation / operator, e.g. `"+"`, `"<<"`, `"=="`, `"{"`.
    Punct(&'static str),
    /// End of input.
    Eof,
}

impl TokenKind {
    /// The identifier text, if this is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match self {
            TokenKind::Ident(s) => Some(s),
            _ => None,
        }
    }
}

/// Multi-character operators, longest first so maximal munch works.
const PUNCTS: &[&str] = &[
    "<<=", ">>=", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||", "+=", "-=", "*=", "/=", "%=",
    "&=", "|=", "^=", "++", "--", "->", "+", "-", "*", "/", "%", "&", "|", "^", "~", "!", "<", ">",
    "=", "(", ")", "{", "}", "[", "]", ";", ",", "?", ":",
];

fn err(line: u32, message: impl Into<String>) -> CompileError {
    CompileError::new("lex", format!("line {line}: {}", message.into()))
}

fn unescape(c: char, line: u32) -> Result<u8, CompileError> {
    Ok(match c {
        'n' => b'\n',
        't' => b'\t',
        'r' => b'\r',
        '0' => 0,
        '\\' => b'\\',
        '\'' => b'\'',
        '"' => b'"',
        other => return Err(err(line, format!("unknown escape `\\{other}`"))),
    })
}

/// Tokenizes MiniC source.
///
/// # Errors
///
/// Returns a lex-stage [`CompileError`] on unterminated literals, unknown
/// escapes or stray characters.
///
/// # Examples
///
/// ```
/// use gpa_minicc::lexer::{lex, TokenKind};
///
/// let tokens = lex("int x = 0x10; // comment")?;
/// assert_eq!(tokens[0].kind, TokenKind::Ident("int".into()));
/// assert_eq!(tokens[3].kind, TokenKind::Int(16));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn lex(source: &str) -> Result<Vec<Token>, CompileError> {
    let mut tokens = Vec::new();
    let bytes = source.as_bytes();
    let mut pos = 0usize;
    let mut line = 1u32;
    while pos < bytes.len() {
        let c = bytes[pos] as char;
        if c == '\n' {
            line += 1;
            pos += 1;
            continue;
        }
        if c.is_ascii_whitespace() {
            pos += 1;
            continue;
        }
        // Comments.
        if source[pos..].starts_with("//") {
            while pos < bytes.len() && bytes[pos] != b'\n' {
                pos += 1;
            }
            continue;
        }
        if source[pos..].starts_with("/*") {
            let start_line = line;
            pos += 2;
            loop {
                if pos + 1 >= bytes.len() {
                    return Err(err(start_line, "unterminated block comment"));
                }
                if bytes[pos] == b'\n' {
                    line += 1;
                }
                if &source[pos..pos + 2] == "*/" {
                    pos += 2;
                    break;
                }
                pos += 1;
            }
            continue;
        }
        // Identifiers / keywords.
        if c.is_ascii_alphabetic() || c == '_' {
            let start = pos;
            while pos < bytes.len()
                && ((bytes[pos] as char).is_ascii_alphanumeric() || bytes[pos] == b'_')
            {
                pos += 1;
            }
            tokens.push(Token {
                kind: TokenKind::Ident(source[start..pos].to_owned()),
                line,
            });
            continue;
        }
        // Numbers.
        if c.is_ascii_digit() {
            let start = pos;
            let value = if source[pos..].starts_with("0x") || source[pos..].starts_with("0X") {
                pos += 2;
                let hex_start = pos;
                while pos < bytes.len() && (bytes[pos] as char).is_ascii_hexdigit() {
                    pos += 1;
                }
                i64::from_str_radix(&source[hex_start..pos], 16)
                    .map_err(|_| err(line, "bad hex literal"))?
            } else {
                while pos < bytes.len() && (bytes[pos] as char).is_ascii_digit() {
                    pos += 1;
                }
                source[start..pos]
                    .parse::<i64>()
                    .map_err(|_| err(line, "bad integer literal"))?
            };
            tokens.push(Token {
                kind: TokenKind::Int(value),
                line,
            });
            continue;
        }
        // Character literals.
        if c == '\'' {
            pos += 1;
            let ch = *bytes
                .get(pos)
                .ok_or_else(|| err(line, "unterminated char"))? as char;
            let value = if ch == '\\' {
                pos += 1;
                let e = *bytes
                    .get(pos)
                    .ok_or_else(|| err(line, "unterminated char"))? as char;
                unescape(e, line)?
            } else {
                ch as u8
            };
            pos += 1;
            if bytes.get(pos) != Some(&b'\'') {
                return Err(err(line, "unterminated char literal"));
            }
            pos += 1;
            tokens.push(Token {
                kind: TokenKind::Int(value as i64),
                line,
            });
            continue;
        }
        // String literals.
        if c == '"' {
            pos += 1;
            let mut text = String::new();
            loop {
                let ch = *bytes
                    .get(pos)
                    .ok_or_else(|| err(line, "unterminated string"))?
                    as char;
                pos += 1;
                match ch {
                    '"' => break,
                    '\\' => {
                        let e = *bytes
                            .get(pos)
                            .ok_or_else(|| err(line, "unterminated string"))?
                            as char;
                        pos += 1;
                        text.push(unescape(e, line)? as char);
                    }
                    '\n' => return Err(err(line, "newline in string literal")),
                    other => text.push(other),
                }
            }
            tokens.push(Token {
                kind: TokenKind::Str(text),
                line,
            });
            continue;
        }
        // Punctuation.
        if let Some(p) = PUNCTS.iter().find(|p| source[pos..].starts_with(**p)) {
            pos += p.len();
            tokens.push(Token {
                kind: TokenKind::Punct(p),
                line,
            });
            continue;
        }
        return Err(err(line, format!("unexpected character `{c}`")));
    }
    tokens.push(Token {
        kind: TokenKind::Eof,
        line,
    });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn basic_tokens() {
        assert_eq!(
            kinds("int x = 42;"),
            vec![
                TokenKind::Ident("int".into()),
                TokenKind::Ident("x".into()),
                TokenKind::Punct("="),
                TokenKind::Int(42),
                TokenKind::Punct(";"),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn maximal_munch() {
        assert_eq!(
            kinds("a<<=b<<c<=d"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Punct("<<="),
                TokenKind::Ident("b".into()),
                TokenKind::Punct("<<"),
                TokenKind::Ident("c".into()),
                TokenKind::Punct("<="),
                TokenKind::Ident("d".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn literals() {
        assert_eq!(kinds("0x1F")[0], TokenKind::Int(31));
        assert_eq!(kinds("'A'")[0], TokenKind::Int(65));
        assert_eq!(kinds("'\\n'")[0], TokenKind::Int(10));
        assert_eq!(kinds("\"a\\tb\"")[0], TokenKind::Str("a\tb".into()));
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            kinds("a // line\n /* block\n comment */ b"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Ident("b".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn line_numbers() {
        let tokens = lex("a\nb\n\nc").unwrap();
        assert_eq!(tokens[0].line, 1);
        assert_eq!(tokens[1].line, 2);
        assert_eq!(tokens[2].line, 4);
    }

    #[test]
    fn errors() {
        assert!(lex("\"unterminated").is_err());
        assert!(lex("'ab'").is_err());
        assert!(lex("`").is_err());
        assert!(lex("/* never closed").is_err());
        assert!(lex("\"bad \\q escape\"").is_err());
    }
}
