//! The static linker: lays out reachable functions, resolves labels,
//! emits literal pools, and produces the final [`Image`].
//!
//! Like dietlibc's build, linking is *selective*: only functions reachable
//! from `_start` (through direct calls or address-taken references) are
//! placed in the image. Every function is followed by its literal pool —
//! the interwoven data of Fig. 10 in the paper — accessed by pc-relative
//! loads.

use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};

use gpa_arm::encode::is_encodable_imm;
use gpa_arm::insn::{AddressMode, DpOp, MemOffset, MemOp, Operand2};
use gpa_arm::{Cond, Instruction, Reg};
use gpa_image::{Image, Symbol};

use crate::asm::{AsmFunction, AsmItem};
use crate::ast::{GlobalInit, Type, Unit};
use crate::CompileError;

/// Code section base address.
pub const CODE_BASE: u32 = 0x8000;
/// Data section base address.
pub const DATA_BASE: u32 = 0x2_0000;

fn err(message: impl Into<String>) -> CompileError {
    CompileError::new("link", message)
}

/// A literal-pool entry key.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
enum PoolKey {
    Symbol(String),
    Const(u32),
}

/// Per-function layout computed in the first pass.
struct FnLayout {
    base: u32,
    body_words: usize,
    /// Pool entries in first-reference order with their addresses.
    pool: Vec<(PoolKey, u32)>,
}

impl FnLayout {
    fn pool_addr(&self, key: &PoolKey) -> Option<u32> {
        self.pool.iter().find(|(k, _)| k == key).map(|&(_, a)| a)
    }

    fn size_bytes(&self) -> u32 {
        (self.body_words + self.pool.len()) as u32 * 4
    }
}

/// Links the generated functions (plus the assembly runtime) into an
/// executable image.
///
/// # Errors
///
/// Returns a link-stage [`CompileError`] on undefined symbols, duplicate
/// labels, missing `main`, or out-of-range branches / literal loads.
pub fn link(unit: &Unit, mut functions: Vec<AsmFunction>) -> Result<Image, CompileError> {
    functions.extend(crate::runtime::asm_functions());
    let by_name: HashMap<String, usize> = functions
        .iter()
        .enumerate()
        .map(|(i, f)| (f.name.clone(), i))
        .collect();
    if !by_name.contains_key("main") {
        return Err(err("no `main` function defined"));
    }

    // --- Reachability from _start (selective linking) ---
    let mut reachable: HashSet<String> = HashSet::new();
    let mut queue = VecDeque::from(["_start".to_owned()]);
    let mut address_taken: HashSet<String> = HashSet::new();
    while let Some(name) = queue.pop_front() {
        if !reachable.insert(name.clone()) {
            continue;
        }
        let Some(&idx) = by_name.get(&name) else {
            continue; // Calls to intrinsics resolved elsewhere.
        };
        for callee in &functions[idx].calls {
            if by_name.contains_key(callee) && !reachable.contains(callee) {
                queue.push_back(callee.clone());
            }
        }
        for sym in &functions[idx].symbol_refs {
            if by_name.contains_key(sym) {
                address_taken.insert(sym.clone());
                if !reachable.contains(sym) {
                    queue.push_back(sym.clone());
                }
            }
        }
    }
    for f in &functions {
        if f.calls.iter().any(|c| !by_name.contains_key(c)) && reachable.contains(&f.name) {
            let missing: Vec<_> = f
                .calls
                .iter()
                .filter(|c| !by_name.contains_key(c.as_str()))
                .collect();
            return Err(err(format!(
                "function `{}` calls undefined function(s): {missing:?}",
                f.name
            )));
        }
    }

    // Keep _start first, then definition order.
    let mut kept: Vec<&AsmFunction> = Vec::new();
    if let Some(&i) = by_name.get("_start") {
        kept.push(&functions[i]);
    }
    for f in &functions {
        if f.name != "_start" && reachable.contains(&f.name) {
            kept.push(f);
        }
    }

    // --- Pass 1: function layout and label addresses ---
    let mut labels: HashMap<String, u32> = HashMap::new();
    let mut layouts: Vec<FnLayout> = Vec::with_capacity(kept.len());
    let mut cursor = CODE_BASE;
    for f in &kept {
        let base = cursor;
        let mut offset_words = 0usize;
        let mut pool_keys: Vec<PoolKey> = Vec::new();
        let mut seen: HashSet<PoolKey> = HashSet::new();
        for item in &f.items {
            match item {
                AsmItem::Label(name) => {
                    let addr = base + 4 * offset_words as u32;
                    if labels.insert(name.clone(), addr).is_some() {
                        return Err(err(format!("duplicate label `{name}`")));
                    }
                }
                AsmItem::LoadAddr { symbol, .. } => {
                    let key = PoolKey::Symbol(symbol.clone());
                    if seen.insert(key.clone()) {
                        pool_keys.push(key);
                    }
                    offset_words += 1;
                }
                AsmItem::LoadConst { value, .. } => {
                    if !is_encodable_imm(*value) && !is_encodable_imm(!*value) {
                        let key = PoolKey::Const(*value);
                        if seen.insert(key.clone()) {
                            pool_keys.push(key);
                        }
                    }
                    offset_words += 1;
                }
                other => offset_words += other.encoded_words(),
            }
        }
        let pool_base = base + 4 * offset_words as u32;
        let pool: Vec<(PoolKey, u32)> = pool_keys
            .into_iter()
            .enumerate()
            .map(|(i, k)| (k, pool_base + 4 * i as u32))
            .collect();
        cursor = pool_base + 4 * pool.len() as u32;
        layouts.push(FnLayout {
            base,
            body_words: offset_words,
            pool,
        });
    }

    // --- Data section layout ---
    let mut data: Vec<u8> = Vec::new();
    let mut data_symbols: Vec<Symbol> = Vec::new();
    // (data offset of pointer cell, string label) fixups for `char *g = "…"`.
    let mut pointer_fixups: Vec<(usize, String)> = Vec::new();
    let mut global_addrs: BTreeMap<String, u32> = BTreeMap::new();
    let mut cstr_counter = 0usize;

    let used_globals: HashSet<&str> = kept
        .iter()
        .flat_map(|f| f.symbol_refs.iter())
        .map(String::as_str)
        .collect();
    for g in &unit.globals {
        if !used_globals.contains(g.name.as_str()) {
            continue;
        }
        while !data.len().is_multiple_of(4) {
            data.push(0);
        }
        let addr = DATA_BASE + data.len() as u32;
        global_addrs.insert(g.name.clone(), addr);
        let start = data.len();
        match (&g.ty, &g.init) {
            (Type::Array(elem, n), init) => {
                let elem_size = elem.size().max(1);
                let total = elem_size * n;
                match init {
                    Some(GlobalInit::List(items)) => {
                        for v in items.iter().take(*n) {
                            match elem_size {
                                1 => data.push(*v as u8),
                                _ => data.extend_from_slice(&(*v as i32).to_le_bytes()),
                            }
                        }
                    }
                    Some(GlobalInit::Str(s)) => {
                        data.extend_from_slice(s.as_bytes());
                        data.push(0);
                    }
                    Some(GlobalInit::Scalar(_)) => {
                        return Err(err(format!(
                            "array global `{}` needs a list or string initializer",
                            g.name
                        )))
                    }
                    None => {}
                }
                while data.len() < start + total {
                    data.push(0);
                }
            }
            (Type::Ptr(_), Some(GlobalInit::Str(s))) => {
                let label = format!(".Lcstr{cstr_counter}");
                cstr_counter += 1;
                pointer_fixups.push((data.len(), label.clone()));
                data.extend_from_slice(&0u32.to_le_bytes());
                // The string body is appended after all globals; remember it
                // through the symbol map by reserving the label now.
                data_symbols.push(Symbol::object(label.clone(), 0, s.len() as u32 + 1));
                global_addrs.insert(label, u32::MAX); // patched below
            }
            (ty, init) => {
                let value = match init {
                    Some(GlobalInit::Scalar(v)) => *v,
                    None => 0,
                    _ => {
                        return Err(err(format!(
                            "scalar global `{}` needs a scalar initializer",
                            g.name
                        )))
                    }
                };
                match ty.size() {
                    1 => data.push(value as u8),
                    _ => data.extend_from_slice(&(value as i32).to_le_bytes()),
                }
            }
        }
        let size = (data.len() - start) as u32;
        data_symbols.push(Symbol::object(g.name.clone(), addr, size));
    }
    // Append string bodies for pointer-initialized globals.
    {
        let mut fixup_strings: Vec<(String, String)> = Vec::new(); // (label, text)
        let mut idx = 0usize;
        for g in &unit.globals {
            if !used_globals.contains(g.name.as_str()) {
                continue;
            }
            if let (Type::Ptr(_), Some(GlobalInit::Str(s))) = (&g.ty, &g.init) {
                fixup_strings.push((format!(".Lcstr{idx}"), s.clone()));
                idx += 1;
            }
        }
        for (label, text) in fixup_strings {
            while !data.len().is_multiple_of(4) {
                data.push(0);
            }
            let addr = DATA_BASE + data.len() as u32;
            global_addrs.insert(label.clone(), addr);
            if let Some(sym) = data_symbols.iter_mut().find(|s| s.name == label) {
                sym.addr = addr;
            }
            data.extend_from_slice(text.as_bytes());
            data.push(0);
        }
        for (offset, label) in pointer_fixups {
            let addr = global_addrs[&label];
            data[offset..offset + 4].copy_from_slice(&addr.to_le_bytes());
        }
    }
    // String literals referenced from code.
    for f in &kept {
        for (label, bytes) in &f.strings {
            while !data.len().is_multiple_of(4) {
                data.push(0);
            }
            let addr = DATA_BASE + data.len() as u32;
            if global_addrs.insert(label.clone(), addr).is_some() {
                return Err(err(format!("duplicate string label `{label}`")));
            }
            data_symbols.push(Symbol::object(label.clone(), addr, bytes.len() as u32));
            data.extend_from_slice(bytes);
        }
    }

    // Unified symbol resolution: code labels win, then data.
    let resolve = |name: &str| -> Option<u32> {
        labels
            .get(name)
            .copied()
            .or_else(|| global_addrs.get(name).copied())
    };

    // --- Pass 2: encoding ---
    let mut image = Image::new(CODE_BASE, DATA_BASE);
    for (f, layout) in kept.iter().zip(&layouts) {
        let mut addr = layout.base;
        let push =
            |image: &mut Image, insn: Instruction, addr: &mut u32| -> Result<(), CompileError> {
                let word = insn
                    .encode()
                    .map_err(|e| err(format!("in `{}`: {insn}: {e}", f.name)))?;
                let at = image.push_code_word(word);
                debug_assert_eq!(at, *addr);
                *addr += 4;
                Ok(())
            };
        for item in &f.items {
            match item {
                AsmItem::Label(_) => {}
                AsmItem::Insn(insn) => push(&mut image, *insn, &mut addr)?,
                AsmItem::BranchTo { cond, link, label } => {
                    let target =
                        resolve(label).ok_or_else(|| err(format!("undefined label `{label}`")))?;
                    let offset = (target as i64 - (addr as i64 + 8)) / 4;
                    let insn = Instruction::Branch {
                        cond: *cond,
                        link: *link,
                        offset: offset as i32,
                    };
                    push(&mut image, insn, &mut addr)?;
                }
                AsmItem::LoadAddr { rd, symbol } => {
                    let key = PoolKey::Symbol(symbol.clone());
                    let pool_addr = layout
                        .pool_addr(&key)
                        .expect("pass 1 recorded a pool slot for every LoadAddr");
                    push(
                        &mut image,
                        pc_relative_load(*rd, addr, pool_addr)?,
                        &mut addr,
                    )?;
                }
                AsmItem::LoadConst { rd, value } => {
                    let insn = if is_encodable_imm(*value) {
                        Instruction::mov_imm(*rd, *value)
                    } else if is_encodable_imm(!*value) {
                        Instruction::DataProc {
                            cond: Cond::Al,
                            op: DpOp::Mvn,
                            set_flags: false,
                            rd: *rd,
                            rn: Reg::r(0),
                            op2: Operand2::Imm(!*value),
                        }
                    } else {
                        let key = PoolKey::Const(*value);
                        let pool_addr = layout
                            .pool_addr(&key)
                            .expect("pass 1 recorded a pool slot for wide constants");
                        pc_relative_load(*rd, addr, pool_addr)?
                    };
                    push(&mut image, insn, &mut addr)?;
                }
                AsmItem::IndirectCall { target } => {
                    // mov lr, pc reads pc = (address of mov) + 8, which is
                    // the instruction after the bx — the return address.
                    push(
                        &mut image,
                        Instruction::mov_reg(Reg::LR, Reg::PC),
                        &mut addr,
                    )?;
                    push(
                        &mut image,
                        Instruction::Bx {
                            cond: Cond::Al,
                            rm: *target,
                        },
                        &mut addr,
                    )?;
                }
            }
        }
        // Literal pool.
        let _ = addr;
        for (key, pool_addr) in &layout.pool {
            let word = match key {
                PoolKey::Const(v) => *v,
                PoolKey::Symbol(name) => resolve(name)
                    .ok_or_else(|| err(format!("undefined symbol `{name}` in literal pool")))?,
            };
            let at = image.push_code_word(word);
            debug_assert_eq!(at, *pool_addr);
        }
    }

    // --- Symbols and entry ---
    for (f, layout) in kept.iter().zip(&layouts) {
        let mut sym = Symbol::function(f.name.clone(), layout.base, layout.size_bytes());
        if address_taken.contains(&f.name) || f.address_taken {
            sym = sym.with_address_taken();
        }
        image.add_symbol(sym);
    }
    for sym in data_symbols {
        image.add_symbol(sym);
    }
    for b in data {
        image.push_data(&[b]);
    }
    let entry = labels
        .get("_start")
        .copied()
        .ok_or_else(|| err("`_start` was not linked"))?;
    image.set_entry(entry);
    Ok(image)
}

/// Builds `ldr rd, [pc, #disp]` reaching `pool_addr` from the instruction
/// at `insn_addr`.
fn pc_relative_load(rd: Reg, insn_addr: u32, pool_addr: u32) -> Result<Instruction, CompileError> {
    let disp = pool_addr as i64 - (insn_addr as i64 + 8);
    if disp.abs() >= 4096 {
        return Err(err(format!(
            "literal pool out of range ({disp} bytes; function too large)"
        )));
    }
    Ok(Instruction::Mem {
        cond: Cond::Al,
        op: MemOp::Ldr,
        byte: false,
        rd,
        rn: Reg::PC,
        offset: MemOffset::Imm(disp as i32),
        mode: AddressMode::Offset,
    })
}

#[cfg(test)]
mod tests {

    use crate::{compile, compile_freestanding, Options};
    use gpa_emu::Machine;
    use gpa_image::SymbolKind;

    fn run(src: &str) -> gpa_emu::Outcome {
        let image = compile(src, &Options::default()).unwrap();
        Machine::new(&image).run(10_000_000).unwrap()
    }

    #[test]
    fn links_and_runs_trivial_program() {
        let out = run("int main() { return 5; }");
        assert_eq!(out.exit_code, 5);
    }

    #[test]
    fn selective_linking_drops_unused_functions() {
        let image = compile(
            "int unused_helper(int x) { return x * 3; }\n\
             int main() { return 1; }",
            &Options::default(),
        )
        .unwrap();
        assert!(image.symbol("unused_helper").is_none());
        assert!(image.symbol("main").is_some());
        assert!(image.symbol("_start").is_some());
        // puts etc. are also dropped when unreferenced.
        assert!(image.symbol("puts").is_none());
    }

    #[test]
    fn literal_pools_are_interwoven() {
        let image = compile(
            "int counter = 7; int main() { return counter; }",
            &Options::default(),
        )
        .unwrap();
        let main = image.symbol("main").unwrap().clone();
        // The pool word holding &counter lies inside main's extent.
        let counter_addr = image.symbol("counter").unwrap().addr;
        let found = (main.addr..main.addr + main.size)
            .step_by(4)
            .any(|a| image.code_word_at(a) == Some(counter_addr));
        assert!(found, "main's literal pool holds the address of `counter`");
    }

    #[test]
    fn globals_and_strings() {
        let out = run("char *greeting = \"hello\";\n\
             int main() { puts(greeting); putint(strlen(greeting)); return 0; }");
        assert_eq!(out.output_string(), "hello\n5");
    }

    #[test]
    fn division_runtime_works() {
        let out = run("int main() {\n\
               putint(1234 / 10); _putc(' ');\n\
               putint(1234 % 10); _putc(' ');\n\
               putint(-7 / 2); _putc(' ');\n\
               putint(-7 % 2);\n\
               return 0; }");
        assert_eq!(out.output_string(), "123 4 -3 -1");
    }

    #[test]
    fn variable_shifts_work() {
        let out = run("int main() {\n\
               int n = 3;\n\
               putint(5 << n); _putc(' ');\n\
               putint(-64 >> n); _putc(' ');\n\
               putint(1 << 0);\n\
               return 0; }");
        assert_eq!(out.output_string(), "40 -8 1");
    }

    #[test]
    fn function_pointers_round_trip() {
        let out = run("int twice(int x) { return x + x; }\n\
             int thrice(int x) { return x * 3; }\n\
             int apply(int f, int x) { return f(x); }\n\
             int main() { return apply(twice, 10) + apply(thrice, 1); }");
        assert_eq!(out.exit_code, 23);
        let image = compile(
            "int twice(int x) { return x + x; }\n\
             int apply(int f, int x) { return f(x); }\n\
             int main() { return apply(twice, 10); }",
            &Options::default(),
        )
        .unwrap();
        let twice = image.symbol("twice").unwrap();
        assert!(twice.address_taken);
        assert_eq!(twice.kind, SymbolKind::Function);
    }

    #[test]
    fn global_arrays() {
        let out = run("int table[5] = {10, 20, 30, 40, 50};\n\
             char name[8] = \"abc\";\n\
             int main() {\n\
               int s = 0;\n\
               for (int i = 0; i < 5; i++) s += table[i];\n\
               putint(s); _putc(' '); putint(name[2]);\n\
               return 0; }");
        assert_eq!(out.output_string(), "150 99");
    }

    #[test]
    fn local_arrays_and_recursion() {
        let out = run(
            "int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }\n\
             int main() {\n\
               int buf[4];\n\
               for (int i = 0; i < 4; i++) buf[i] = fib(i + 8);\n\
               return buf[3] - buf[2] - buf[1] + buf[0];\n\
             }",
        );
        // fib(11)-fib(10)-fib(9)+fib(8) = 89-55-34+21 = 21
        assert_eq!(out.exit_code, 21);
    }

    #[test]
    fn malloc_and_memset() {
        let out = run("int main() {\n\
               char *p = malloc(16);\n\
               memset(p, 7, 16);\n\
               int s = 0;\n\
               for (int i = 0; i < 16; i++) s += p[i];\n\
               return s; }");
        assert_eq!(out.exit_code, 112);
    }

    #[test]
    fn freestanding_requires_main() {
        assert!(compile_freestanding("int f() { return 0; }", &Options::default()).is_err());
    }

    #[test]
    fn unscheduled_code_also_runs() {
        let opts = Options { schedule: false };
        let image = compile(
            "int main() { int a = 2; int b = 3; return a * b + 1; }",
            &opts,
        )
        .unwrap();
        let out = Machine::new(&image).run(100_000).unwrap();
        assert_eq!(out.exit_code, 7);
    }
}
