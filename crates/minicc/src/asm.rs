//! The pre-link assembly representation produced by the code generator.
//!
//! Items are either concrete [`Instruction`]s or pseudo-instructions that
//! the linker lowers: label definitions, label-targeted branches, literal
//! loads of symbol addresses and of wide constants, and the indirect-call
//! idiom. Keeping symbolic items until link time is what lets the linker
//! lay out literal pools after each function (Fig. 10 of the paper).

use gpa_arm::reg::RegSet;
use gpa_arm::{Cond, Effects, Instruction, Reg};

/// One item of a function's assembly stream.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum AsmItem {
    /// A label definition. Function entry labels are the function name;
    /// local labels start with `.L`.
    Label(String),
    /// A concrete machine instruction.
    Insn(Instruction),
    /// A branch (or call) to a label, lowered to `b`/`bl` at link time.
    BranchTo {
        /// Condition code.
        cond: Cond,
        /// Whether this is a `bl`.
        link: bool,
        /// Target label.
        label: String,
    },
    /// Loads the address of a symbol via a pc-relative literal-pool load.
    LoadAddr {
        /// Destination register.
        rd: Reg,
        /// Symbol whose address to load (function, global, or string).
        symbol: String,
    },
    /// Loads a 32-bit constant: lowered to `mov`/`mvn` when encodable,
    /// otherwise a literal-pool load.
    LoadConst {
        /// Destination register.
        rd: Reg,
        /// The constant.
        value: u32,
    },
    /// The indirect-call idiom `mov lr, pc; bx target`.
    IndirectCall {
        /// Register holding the target address.
        target: Reg,
    },
}

impl AsmItem {
    /// Whether this item ends a straight-line scheduling region (labels,
    /// branches, calls).
    pub fn is_schedule_barrier(&self) -> bool {
        match self {
            AsmItem::Label(_) | AsmItem::BranchTo { .. } | AsmItem::IndirectCall { .. } => true,
            AsmItem::Insn(i) => i.is_control_flow(),
            AsmItem::LoadAddr { .. } | AsmItem::LoadConst { .. } => false,
        }
    }

    /// The dependence footprint, defined for non-barrier items.
    pub fn effects(&self) -> Effects {
        match self {
            AsmItem::Insn(i) => i.effects(),
            AsmItem::LoadAddr { rd, .. } | AsmItem::LoadConst { rd, .. } => Effects {
                uses: RegSet::EMPTY,
                defs: RegSet::of(&[*rd]),
                reads_flags: false,
                writes_flags: false,
                // A literal load reads the code section, never data the
                // program can store to, so it does not alias program memory.
                reads_mem: false,
                writes_mem: false,
            },
            AsmItem::Label(_) | AsmItem::BranchTo { .. } | AsmItem::IndirectCall { .. } => {
                Effects::default()
            }
        }
    }

    /// Number of machine words this item occupies in the final binary
    /// (labels are zero; an indirect call is two instructions).
    pub fn encoded_words(&self) -> usize {
        match self {
            AsmItem::Label(_) => 0,
            AsmItem::IndirectCall { .. } => 2,
            _ => 1,
        }
    }
}

/// A function's assembly plus the bookkeeping the linker needs.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct AsmFunction {
    /// Function name (doubles as its entry label).
    pub name: String,
    /// The instruction stream.
    pub items: Vec<AsmItem>,
    /// String literals referenced by this function: `(label, bytes)`
    /// including the terminating NUL.
    pub strings: Vec<(String, Vec<u8>)>,
    /// Whether the function's address is taken somewhere (called
    /// indirectly); propagated into the image's symbol table.
    pub address_taken: bool,
    /// Names of functions this one calls directly (for reachability-based
    /// selective linking, dietlibc-style).
    pub calls: Vec<String>,
    /// Symbols whose address this function loads (globals, strings,
    /// functions used as values).
    pub symbol_refs: Vec<String>,
}

impl AsmFunction {
    /// Creates an empty function body.
    pub fn new(name: impl Into<String>) -> AsmFunction {
        AsmFunction {
            name: name.into(),
            ..AsmFunction::default()
        }
    }

    /// Total number of machine words the body will occupy (excluding
    /// literal pools).
    pub fn encoded_words(&self) -> usize {
        self.items.iter().map(AsmItem::encoded_words).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpa_arm::Instruction as I;

    #[test]
    fn barriers() {
        assert!(AsmItem::Label(".L0".into()).is_schedule_barrier());
        assert!(AsmItem::BranchTo {
            cond: Cond::Al,
            link: true,
            label: "f".into()
        }
        .is_schedule_barrier());
        assert!(AsmItem::Insn(I::ret()).is_schedule_barrier());
        assert!(!AsmItem::Insn(I::mov_imm(Reg::r(0), 1)).is_schedule_barrier());
        assert!(!AsmItem::LoadConst {
            rd: Reg::r(0),
            value: 0xdeadbeef
        }
        .is_schedule_barrier());
    }

    #[test]
    fn pseudo_effects() {
        let la = AsmItem::LoadAddr {
            rd: Reg::r(3),
            symbol: "table".into(),
        };
        let fx = la.effects();
        assert!(fx.defs.contains(Reg::r(3)));
        assert!(fx.uses.is_empty());
        assert!(!fx.reads_mem);
    }

    #[test]
    fn word_counts() {
        let mut f = AsmFunction::new("f");
        f.items.push(AsmItem::Label("f".into()));
        f.items.push(AsmItem::Insn(I::mov_imm(Reg::r(0), 1)));
        f.items.push(AsmItem::IndirectCall { target: Reg::r(4) });
        f.items.push(AsmItem::Insn(I::ret()));
        assert_eq!(f.encoded_words(), 4);
    }
}
