//! Semantic analysis: name resolution and type annotation.
//!
//! MiniC typing is deliberately C-like and permissive: `char` promotes to
//! `int` in arithmetic, pointers and ints compare freely, and any scalar
//! may be assigned to any scalar. What sema *does* enforce is the shape of
//! the program the code generator relies on: lvalues where required,
//! pointer arithmetic only on pointers, call-argument counts for known
//! functions (max four — the ABI passes arguments in `r0..r3`), and
//! `break`/`continue` only inside loops.

use std::collections::HashMap;

use crate::ast::*;
use crate::CompileError;

fn err(line: u32, message: impl Into<String>) -> CompileError {
    CompileError::new("sema", format!("line {line}: {}", message.into()))
}

/// Per-function signature facts used at call sites.
#[derive(Clone, Debug)]
struct Signature {
    ret: Type,
    params: usize,
}

struct Analyzer {
    functions: HashMap<String, Signature>,
    globals: HashMap<String, Type>,
    scopes: Vec<HashMap<String, Type>>,
    loop_depth: usize,
}

impl Analyzer {
    fn lookup(&self, name: &str) -> Option<Type> {
        for scope in self.scopes.iter().rev() {
            if let Some(t) = scope.get(name) {
                return Some(t.clone());
            }
        }
        if let Some(t) = self.globals.get(name) {
            return Some(t.clone());
        }
        if self.functions.contains_key(name) {
            return Some(Type::Func);
        }
        None
    }

    fn declare(&mut self, name: &str, ty: Type, line: u32) -> Result<(), CompileError> {
        let scope = self.scopes.last_mut().expect("scope stack is never empty");
        if scope.insert(name.to_owned(), ty).is_some() {
            return Err(err(line, format!("`{name}` redeclared in the same scope")));
        }
        Ok(())
    }

    fn is_lvalue(e: &Expr) -> bool {
        match &e.kind {
            ExprKind::Var(_) => !matches!(e.ty, Type::Array(_, _) | Type::Func),
            ExprKind::Deref(_) | ExprKind::Index(_, _) => true,
            _ => false,
        }
    }

    fn expr(&mut self, e: &mut Expr) -> Result<(), CompileError> {
        let line = e.line;
        let ty = match &mut e.kind {
            ExprKind::Int(_) => Type::Int,
            ExprKind::Str(_) => Type::Ptr(Box::new(Type::Char)),
            ExprKind::Var(name) => self
                .lookup(name)
                .ok_or_else(|| err(line, format!("`{name}` is not declared")))?,
            ExprKind::Unary(op, inner) => {
                self.expr(inner)?;
                if matches!(op, UnOp::Neg | UnOp::BitNot) && !inner.ty.is_scalar_int() {
                    return Err(err(
                        line,
                        format!("`{}` applied to {}", "unary op", inner.ty),
                    ));
                }
                Type::Int
            }
            ExprKind::Binary(op, lhs, rhs) => {
                self.expr(lhs)?;
                self.expr(rhs)?;
                let (lt, rt) = (lhs.ty.decayed(), rhs.ty.decayed());
                match op {
                    BinOp::Add => match (&lt, &rt) {
                        (Type::Ptr(_), t) if t.is_scalar_int() => lt,
                        (t, Type::Ptr(_)) if t.is_scalar_int() => rt,
                        (a, b) if a.is_scalar_int() && b.is_scalar_int() => Type::Int,
                        _ => return Err(err(line, format!("cannot add {lt} and {rt}"))),
                    },
                    BinOp::Sub => match (&lt, &rt) {
                        (Type::Ptr(_), t) if t.is_scalar_int() => lt,
                        (Type::Ptr(a), Type::Ptr(b)) if a == b => Type::Int,
                        (a, b) if a.is_scalar_int() && b.is_scalar_int() => Type::Int,
                        _ => return Err(err(line, format!("cannot subtract {rt} from {lt}"))),
                    },
                    BinOp::LAnd | BinOp::LOr => Type::Int,
                    _ if op.is_comparison() => Type::Int,
                    _ => {
                        if !lt.is_scalar_int() || !rt.is_scalar_int() {
                            return Err(err(line, format!("arithmetic on {lt} and {rt}")));
                        }
                        Type::Int
                    }
                }
            }
            ExprKind::Assign(lhs, rhs) => {
                self.expr(lhs)?;
                self.expr(rhs)?;
                if !Self::is_lvalue(lhs) {
                    return Err(err(line, "assignment target is not an lvalue"));
                }
                lhs.ty.clone()
            }
            ExprKind::IncDec { target, .. } => {
                self.expr(target)?;
                if !Self::is_lvalue(target) {
                    return Err(err(line, "++/-- target is not an lvalue"));
                }
                target.ty.clone()
            }
            ExprKind::Call(callee, args) => {
                for a in args.iter_mut() {
                    self.expr(a)?;
                }
                if args.len() > 4 {
                    return Err(err(line, "at most 4 call arguments are supported"));
                }
                // Direct call to a known function: check arity, use return
                // type. Anything else is an indirect call returning int.
                // A local or global variable shadows a same-named function.
                if let ExprKind::Var(name) = &callee.kind {
                    let shadowed = self.scopes.iter().any(|s| s.contains_key(name.as_str()))
                        || self.globals.contains_key(name.as_str());
                    if !shadowed {
                        if let Some(sig) = self.functions.get(name).cloned() {
                            callee.ty = Type::Func;
                            if sig.params != args.len() {
                                return Err(err(
                                    line,
                                    format!(
                                        "`{name}` takes {} arguments, {} given",
                                        sig.params,
                                        args.len()
                                    ),
                                ));
                            }
                            return {
                                e.ty = sig.ret;
                                Ok(())
                            };
                        }
                    }
                }
                self.expr(callee)?;
                if !callee.ty.is_pointer_like() && !callee.ty.is_scalar_int() {
                    return Err(err(
                        line,
                        format!("cannot call a value of type {}", callee.ty),
                    ));
                }
                Type::Int
            }
            ExprKind::Index(base, idx) => {
                self.expr(base)?;
                self.expr(idx)?;
                if !idx.ty.decayed().is_scalar_int() {
                    return Err(err(line, "array index must be an integer"));
                }
                match base.ty.pointee() {
                    Some(elem) => elem.clone(),
                    None => return Err(err(line, format!("cannot index into {}", base.ty))),
                }
            }
            ExprKind::Deref(inner) => {
                self.expr(inner)?;
                match inner.ty.pointee() {
                    Some(elem) => elem.clone(),
                    None => return Err(err(line, format!("cannot dereference {}", inner.ty))),
                }
            }
            ExprKind::AddrOf(inner) => {
                self.expr(inner)?;
                match &inner.kind {
                    ExprKind::Var(name) if matches!(inner.ty, Type::Func) => {
                        // &func — same as the bare function name.
                        let _ = name;
                        Type::Func
                    }
                    _ if Self::is_lvalue(inner) => Type::Ptr(Box::new(inner.ty.clone())),
                    ExprKind::Var(_) if matches!(inner.ty, Type::Array(_, _)) => Type::Ptr(
                        Box::new(inner.ty.pointee().expect("array has element type").clone()),
                    ),
                    _ => return Err(err(line, "cannot take the address of this expression")),
                }
            }
            ExprKind::Cond(c, a, b) => {
                self.expr(c)?;
                self.expr(a)?;
                self.expr(b)?;
                a.ty.decayed()
            }
        };
        e.ty = ty;
        Ok(())
    }

    fn stmt(&mut self, s: &mut Stmt) -> Result<(), CompileError> {
        match s {
            Stmt::Block(stmts) => {
                self.scopes.push(HashMap::new());
                for st in stmts {
                    self.stmt(st)?;
                }
                self.scopes.pop();
            }
            Stmt::Decl {
                name,
                ty,
                init,
                line,
            } => {
                if ty.size() == 0 && !matches!(ty, Type::Ptr(_)) {
                    return Err(err(*line, format!("cannot declare `{name}` of type {ty}")));
                }
                if let Some(e) = init {
                    self.expr(e)?;
                    if matches!(ty, Type::Array(_, _)) {
                        return Err(err(*line, "array locals cannot have initializers"));
                    }
                }
                self.declare(name, ty.clone(), *line)?;
            }
            Stmt::Expr(e) => self.expr(e)?,
            Stmt::If { cond, then, els } => {
                self.expr(cond)?;
                self.stmt(then)?;
                if let Some(e) = els {
                    self.stmt(e)?;
                }
            }
            Stmt::While { cond, body } => {
                self.expr(cond)?;
                self.loop_depth += 1;
                self.stmt(body)?;
                self.loop_depth -= 1;
            }
            Stmt::DoWhile { body, cond } => {
                self.loop_depth += 1;
                self.stmt(body)?;
                self.loop_depth -= 1;
                self.expr(cond)?;
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
            } => {
                self.scopes.push(HashMap::new());
                if let Some(i) = init {
                    self.stmt(i)?;
                }
                if let Some(c) = cond {
                    self.expr(c)?;
                }
                if let Some(st) = step {
                    self.expr(st)?;
                }
                self.loop_depth += 1;
                self.stmt(body)?;
                self.loop_depth -= 1;
                self.scopes.pop();
            }
            Stmt::Return(value, _line) => {
                if let Some(e) = value {
                    self.expr(e)?;
                }
            }
            Stmt::Break(line) | Stmt::Continue(line) => {
                if self.loop_depth == 0 {
                    return Err(err(*line, "break/continue outside of a loop"));
                }
            }
        }
        Ok(())
    }
}

/// Resolves names and annotates every expression with its type.
///
/// # Errors
///
/// Returns a sema-stage [`CompileError`] on undeclared names, non-lvalue
/// assignment targets, invalid pointer arithmetic, call arity mismatches,
/// and `break`/`continue` outside loops.
pub fn analyze(mut unit: Unit) -> Result<Unit, CompileError> {
    let mut functions = HashMap::new();
    // Intrinsics (lowered to `swi` by codegen) and assembly runtime helpers
    // are callable without a MiniC definition; a user definition overrides.
    for (name, params, _svc) in crate::codegen::INTRINSICS {
        functions.insert(
            name.to_owned(),
            Signature {
                ret: Type::Int,
                params,
            },
        );
    }
    for name in ["__ashl", "__ashr"] {
        functions.insert(
            name.to_owned(),
            Signature {
                ret: Type::Int,
                params: 2,
            },
        );
    }
    let mut user_defined = std::collections::HashSet::new();
    for f in &unit.functions {
        functions.insert(
            f.name.clone(),
            Signature {
                ret: f.ret.clone(),
                params: f.params.len(),
            },
        );
        if !user_defined.insert(f.name.clone()) {
            return Err(err(f.line, format!("function `{}` defined twice", f.name)));
        }
        if f.params.len() > 4 {
            return Err(err(f.line, "at most 4 parameters are supported"));
        }
    }
    let mut globals = HashMap::new();
    for g in &unit.globals {
        if globals.insert(g.name.clone(), g.ty.clone()).is_some() {
            return Err(err(g.line, format!("global `{}` defined twice", g.name)));
        }
        if functions.contains_key(&g.name) {
            return Err(err(
                g.line,
                format!("`{}` is both global and function", g.name),
            ));
        }
    }
    let mut analyzer = Analyzer {
        functions,
        globals,
        scopes: Vec::new(),
        loop_depth: 0,
    };
    for f in &mut unit.functions {
        analyzer.scopes.push(HashMap::new());
        for (name, ty) in &f.params {
            analyzer.declare(name, ty.clone(), f.line)?;
        }
        analyzer.stmt(&mut f.body)?;
        analyzer.scopes.pop();
        debug_assert!(analyzer.scopes.is_empty());
    }
    Ok(unit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse;

    fn check(src: &str) -> Result<Unit, CompileError> {
        analyze(parse(&lex(src).unwrap()).unwrap())
    }

    #[test]
    fn annotates_types() {
        let unit = check(
            "int g[4];\n\
             int f(int *p) { return g[1] + *p; }",
        )
        .unwrap();
        let Stmt::Block(body) = &unit.functions[0].body else {
            panic!()
        };
        let Stmt::Return(Some(e), _) = &body[0] else {
            panic!()
        };
        assert_eq!(e.ty, Type::Int);
    }

    #[test]
    fn pointer_arithmetic_scales() {
        let unit = check("int f(int *p) { return *(p + 2); }").unwrap();
        let Stmt::Block(body) = &unit.functions[0].body else {
            panic!()
        };
        let Stmt::Return(Some(e), _) = &body[0] else {
            panic!()
        };
        let ExprKind::Deref(inner) = &e.kind else {
            panic!()
        };
        assert_eq!(inner.ty, Type::Ptr(Box::new(Type::Int)));
    }

    #[test]
    fn rejects_bad_programs() {
        assert!(check("int f() { return missing; }").is_err());
        assert!(check("int f() { 3 = 4; return 0; }").is_err());
        assert!(check("int f(int x) { return *x; }").is_err());
        assert!(check("int f() { break; return 0; }").is_err());
        assert!(check("int f(int a, int b, int c, int d, int e) { return 0; }").is_err());
        assert!(check("int f(int x) { return x(1, 2, 3, 4, 5); }").is_err());
        assert!(check("int g(int a) { return a; } int f() { return g(); }").is_err());
        assert!(check("int f() { int x; int x; return 0; }").is_err());
        assert!(check("int x; int x;").is_err());
        assert!(check("int f() { return f + 1; }").is_err());
    }

    #[test]
    fn function_names_are_values() {
        let unit = check(
            "int twice(int x) { return x + x; }\n\
             int apply(int f, int x) { return f(x); }\n\
             int main() { return apply(twice, 21); }",
        )
        .unwrap();
        assert_eq!(unit.functions.len(), 3);
    }

    #[test]
    fn shadowing_in_inner_scope_is_fine() {
        assert!(check("int f() { int x = 1; { int x = 2; } return x; }").is_ok());
    }
}
