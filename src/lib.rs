//! Umbrella crate for the *Graph-Based Procedural Abstraction* (CGO 2007)
//! reproduction: re-exports the workspace crates so the repository-level
//! examples and integration tests can reach everything through one
//! dependency.
//!
//! The interesting APIs live in the member crates:
//!
//! * [`gpa`] — the optimizer (detection, cost model, extraction);
//! * [`gpa_minicc`] — the MiniC compiler producing the benchmark corpus;
//! * [`gpa_cfg`] / [`gpa_dfg`] — binary lifting and data-flow graphs;
//! * [`gpa_mining`] — DgSpan/Edgar frequent-subgraph mining;
//! * [`gpa_sfx`] — the suffix-array baseline;
//! * [`gpa_emu`] — the ARM-subset emulator used to verify semantics.

#![warn(missing_docs)]

pub use gpa;
pub use gpa_arm;
pub use gpa_cfg;
pub use gpa_dfg;
pub use gpa_emu;
pub use gpa_image;
pub use gpa_minicc;
pub use gpa_mining;
pub use gpa_sfx;
