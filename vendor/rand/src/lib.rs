//! Offline stand-in for the `rand` crate.
//!
//! The build container has no network access, so the workspace vendors
//! the tiny API subset it actually uses: a seedable deterministic
//! generator ([`rngs::StdRng`]) and the [`Rng`] range/bool helpers. The
//! stream is *not* the upstream `StdRng` stream — everything seeded here
//! is consumed within this repository, so only determinism matters, not
//! cross-crate reproducibility.

#![warn(missing_docs)]

/// Core entropy source: 64 random bits at a time.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling helpers layered over any [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform sample from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample(&mut |_| self.next_u64())
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} out of [0, 1]");
        // 53 uniform mantissa bits against the threshold.
        let x = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        x < p
    }
}

impl<T: RngCore> Rng for T {}

/// A range that knows how to sample itself. The closure indirection
/// keeps the trait object-safe-free and dead simple.
pub trait SampleRange<T> {
    /// Draws one uniform sample using the supplied 64-bit source.
    fn sample(self, bits: &mut dyn FnMut(()) -> u64) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample(self, bits: &mut dyn FnMut(()) -> u64) -> $t {
                assert!(self.start < self.end, "empty range");
                let width = (self.end as i128 - self.start as i128) as u128;
                let offset = (bits(()) as u128) % width;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample(self, bits: &mut dyn FnMut(()) -> u64) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range");
                let width = (end as i128 - start as i128) as u128 + 1;
                let offset = (bits(()) as u128) % width;
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's deterministic generator: `splitmix64`, which has
    /// full 64-bit state diffusion and passes the statistical tests that
    /// matter for test-input generation.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u32..1000), b.gen_range(0u32..1000));
        }
        let mut c = StdRng::seed_from_u64(8);
        let equal = (0..100)
            .filter(|_| a.gen_range(0u32..1000) == c.gen_range(0u32..1000))
            .count();
        assert!(equal < 50, "different seeds should diverge");
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&v));
            let u = rng.gen_range(3usize..=9);
            assert!((3..=9).contains(&u));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((1500..3500).contains(&hits), "hits={hits}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
