//! The [`Strategy`] trait and the combinators the workspace tests use.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Produces one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `map`.
    fn prop_map<O, F>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, map }
    }

    /// Feeds generated values into a strategy-producing function and
    /// generates from the result.
    fn prop_flat_map<S, F>(self, flat: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { source: self, flat }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    source: S,
    map: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.map)(self.source.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone, Debug)]
pub struct FlatMap<S, F> {
    source: S,
    flat: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.flat)(self.source.generate(rng)).generate(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed arms; built by `prop_oneof!`.
pub struct OneOf<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> OneOf<V> {
    /// Wraps a non-empty arm list.
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> OneOf<V> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        OneOf { arms }
    }
}

impl<V> Strategy for OneOf<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.arms.len());
        self.arms[i].generate(rng)
    }
}

/// Types with a canonical full-range strategy, used by [`any`].
pub trait Arbitrary: Sized {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The strategy returned by [`any`].
#[derive(Debug)]
pub struct Any<T>(PhantomData<fn() -> T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Any<T> {
        Any(PhantomData)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// An unconstrained value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap)]
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let width = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % width;
                (self.start as i128 + offset as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap)]
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let width = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % width;
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

/// Each element strategy generates one element (used by
/// `prop_flat_map` closures that assemble per-index strategies).
impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        self.iter().map(|s| s.generate(rng)).collect()
    }
}

/// `&str` is the regex-subset string strategy (see [`crate::string`]).
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::generate(self, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::deterministic("strategy-tests")
    }

    #[test]
    fn ranges_and_tuples_stay_in_bounds() {
        let mut rng = rng();
        for _ in 0..500 {
            let (a, b, c) = (0u8..16, -5i32..5, 3usize..=4).generate(&mut rng);
            assert!(a < 16);
            assert!((-5..5).contains(&b));
            assert!(c == 3 || c == 4);
        }
    }

    #[test]
    fn map_flat_map_and_oneof_compose() {
        let mut rng = rng();
        let s = (1u32..4).prop_flat_map(|n| vec![0u32..n; n as usize]);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!(!v.is_empty() && v.len() < 4);
        }
        let odd_or_even = crate::prop_oneof![
            (0u32..50).prop_map(|x| x * 2),
            (0u32..50).prop_map(|x| x * 2 + 1),
        ];
        let mut seen_odd = false;
        let mut seen_even = false;
        for _ in 0..100 {
            let v = odd_or_even.generate(&mut rng);
            assert!(v < 100);
            if v % 2 == 0 {
                seen_even = true;
            } else {
                seen_odd = true;
            }
        }
        assert!(seen_odd && seen_even);
    }

    #[test]
    fn just_yields_its_value() {
        let mut rng = rng();
        assert_eq!(Just(41u8).generate(&mut rng), 41);
    }
}
