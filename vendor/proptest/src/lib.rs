//! Offline stand-in for the `proptest` crate.
//!
//! The build container has no network access, so the workspace vendors
//! the slice of the proptest API its tests use: [`Strategy`] with
//! `prop_map` / `prop_flat_map`, ranges / tuples / `Vec` / `&str`-regex
//! as strategies, [`collection::vec`] and [`collection::btree_set`],
//! `prop_oneof!`, `Just`, `any::<T>()`, and the `proptest!` test macro
//! with `ProptestConfig::with_cases`.
//!
//! Differences from upstream, deliberately accepted:
//!
//! * **no shrinking** — a failing case panics with the generated values
//!   in the assertion message instead of a minimised counterexample;
//! * **deterministic seeding** — each test's RNG is seeded from the test
//!   name, so runs are reproducible without a persistence file;
//! * the `&str` strategy understands only the character-class regex
//!   subset used in this repository (`[a-z_]`, literals, `{m,n}`).

#![warn(missing_docs)]

pub mod collection;
pub mod strategy;
pub mod string;
pub mod test_runner;

pub use strategy::{any, Any, Arbitrary, BoxedStrategy, Just, Strategy};
pub use test_runner::{ProptestConfig, TestRng};

/// Everything a `proptest`-based test file needs in scope.
pub mod prelude {
    pub use crate::strategy::{any, Any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Uniform choice between several strategies producing the same type.
///
/// Each arm is boxed; selection is uniform (upstream weights are not
/// supported — nothing in this repository uses them).
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Property-test assertion; panics on failure (no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Property-test equality assertion; panics on failure (no shrinking).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Property-test inequality assertion; panics on failure (no shrinking).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// The test-declaration macro: each `fn name(arg in strategy, ...) { .. }`
/// becomes a `#[test]` that runs the body for `ProptestConfig::cases`
/// generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $cfg:expr;
     $( $(#[$meta:meta])* fn $name:ident
        ( $($arg:pat in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng =
                    $crate::test_runner::TestRng::deterministic(stringify!($name));
                for __case in 0..config.cases {
                    let _ = __case;
                    $(
                        let $arg =
                            $crate::strategy::Strategy::generate(&($strat), &mut rng);
                    )+
                    $body
                }
            }
        )*
    };
}
