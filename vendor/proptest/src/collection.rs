//! Collection strategies: `vec` and `btree_set`.

use std::collections::BTreeSet;
use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// An inclusive size band for generated collections.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { min: n, max: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

impl SizeRange {
    fn pick(self, rng: &mut TestRng) -> usize {
        self.min + rng.below(self.max - self.min + 1)
    }
}

/// A `Vec` whose length is drawn from `size` and whose elements come
/// from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec`].
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.size.pick(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// A `BTreeSet` whose target cardinality is drawn from `size`. If the
/// element domain is too small to reach the target, the set saturates at
/// whatever was collected (upstream proptest rejects instead; nothing in
/// this repository depends on the difference).
pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}

/// See [`btree_set`].
#[derive(Clone, Debug)]
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
        let n = self.size.pick(rng);
        let mut set = BTreeSet::new();
        for _ in 0..n.saturating_mul(20).max(20) {
            if set.len() >= n {
                break;
            }
            set.insert(self.element.generate(rng));
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::any;

    #[test]
    fn vec_respects_size_band() {
        let mut rng = TestRng::deterministic("vec");
        let s = vec(any::<u32>(), 2..5);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
    }

    #[test]
    fn btree_set_hits_target_when_domain_allows() {
        let mut rng = TestRng::deterministic("set");
        let s = btree_set(0u32..100, 3..4);
        for _ in 0..100 {
            assert_eq!(s.generate(&mut rng).len(), 3);
        }
    }

    #[test]
    fn btree_set_saturates_on_tiny_domains() {
        let mut rng = TestRng::deterministic("tiny");
        let s = btree_set(0u32..2, 2..3);
        let v = s.generate(&mut rng);
        assert!(v.len() <= 2);
    }
}
