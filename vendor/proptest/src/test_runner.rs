//! Test configuration and the deterministic RNG behind generation.

/// Per-test configuration; only the case count is honoured.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated inputs per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` inputs per test.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

/// A `splitmix64` generator seeded from the test name, so every run of a
/// given test sees the same inputs.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator from an arbitrary string (FNV-1a).
    pub fn deterministic(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A uniform index in `0..n`. `n` must be non-zero.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0)");
        (self.next_u64() % n as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::TestRng;

    #[test]
    fn seeding_is_stable_and_name_sensitive() {
        let mut a = TestRng::deterministic("x");
        let mut b = TestRng::deterministic("x");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::deterministic("y");
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn below_stays_in_range() {
        let mut rng = TestRng::deterministic("below");
        for _ in 0..1000 {
            assert!(rng.below(7) < 7);
        }
    }
}
