//! The `&str` strategy: a generator for the character-class regex
//! subset this workspace uses (e.g. `"[a-z_][a-z0-9_]{0,12}"`).
//!
//! Supported syntax: literal characters, `[...]` classes containing
//! single characters and `a-z` ranges, and the quantifiers `{n}`,
//! `{m,n}`, `?`, `*` and `+` (the starred forms are capped at 8
//! repetitions — test inputs, not general regex semantics).

use crate::test_runner::TestRng;

#[derive(Clone, Debug)]
struct Atom {
    /// Candidate characters (singleton for a literal).
    chars: Vec<char>,
    min: usize,
    max: usize,
}

fn parse(pattern: &str) -> Vec<Atom> {
    let mut atoms = Vec::new();
    let mut it = pattern.chars().peekable();
    while let Some(c) = it.next() {
        let chars = if c == '[' {
            let mut set = Vec::new();
            let mut prev: Option<char> = None;
            loop {
                let Some(c) = it.next() else {
                    panic!("unterminated class in regex `{pattern}`");
                };
                match c {
                    ']' => break,
                    '-' if prev.is_some() && it.peek().is_some_and(|&n| n != ']') => {
                        let lo = prev.take().expect("checked above");
                        let hi = it.next().expect("peeked above");
                        for ch in lo..=hi {
                            set.push(ch);
                        }
                    }
                    other => {
                        if let Some(p) = prev.take() {
                            set.push(p);
                        }
                        prev = Some(other);
                    }
                }
            }
            if let Some(p) = prev {
                set.push(p);
            }
            assert!(!set.is_empty(), "empty class in regex `{pattern}`");
            set
        } else {
            vec![c]
        };
        let (min, max) = match it.peek() {
            Some('{') => {
                it.next();
                let mut spec = String::new();
                for c in it.by_ref() {
                    if c == '}' {
                        break;
                    }
                    spec.push(c);
                }
                match spec.split_once(',') {
                    Some((m, n)) => (
                        m.trim().parse().expect("bad quantifier"),
                        n.trim().parse().expect("bad quantifier"),
                    ),
                    None => {
                        let n = spec.trim().parse().expect("bad quantifier");
                        (n, n)
                    }
                }
            }
            Some('?') => {
                it.next();
                (0, 1)
            }
            Some('*') => {
                it.next();
                (0, 8)
            }
            Some('+') => {
                it.next();
                (1, 8)
            }
            _ => (1, 1),
        };
        assert!(min <= max, "bad quantifier in regex `{pattern}`");
        atoms.push(Atom { chars, min, max });
    }
    atoms
}

/// Generates one string matching `pattern`.
pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
    let mut out = String::new();
    for atom in parse(pattern) {
        let count = atom.min + rng.below(atom.max - atom.min + 1);
        for _ in 0..count {
            out.push(atom.chars[rng.below(atom.chars.len())]);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::generate;
    use crate::test_runner::TestRng;

    #[test]
    fn identifier_pattern_generates_identifiers() {
        let mut rng = TestRng::deterministic("ident");
        for _ in 0..200 {
            let s = generate("[a-z_][a-z0-9_]{0,12}", &mut rng);
            assert!(!s.is_empty() && s.len() <= 13, "{s:?}");
            let mut cs = s.chars();
            let first = cs.next().expect("non-empty");
            assert!(first.is_ascii_lowercase() || first == '_', "{s:?}");
            assert!(
                cs.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'),
                "{s:?}"
            );
        }
    }

    #[test]
    fn literals_and_exact_counts() {
        let mut rng = TestRng::deterministic("lit");
        assert_eq!(generate("abc", &mut rng), "abc");
        let s = generate("x[01]{3}", &mut rng);
        assert_eq!(s.len(), 4);
        assert!(s.starts_with('x'));
        assert!(s[1..].chars().all(|c| c == '0' || c == '1'));
    }
}
