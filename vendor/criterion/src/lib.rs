//! Offline stand-in for the `criterion` crate.
//!
//! The build container has no network access, so the workspace vendors
//! the API subset its benches use: `Criterion::{bench_function,
//! benchmark_group}`, groups with `sample_size` / `bench_with_input` /
//! `finish`, `BenchmarkId`, and the `criterion_group!` /
//! `criterion_main!` macros. Each benchmark runs a fixed warm-up plus a
//! timed sample loop and prints mean wall-clock time — enough to compare
//! orders of magnitude, with none of upstream's statistics.

#![warn(missing_docs)]

use std::fmt::Display;
use std::hint;
use std::time::Instant;

/// Prevents the optimiser from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// A benchmark label, possibly parameterised.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// A `function/parameter` label.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            name: format!("{}/{parameter}", function.into()),
        }
    }

    /// A parameter-only label.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

/// The per-iteration timing driver handed to benchmark closures.
pub struct Bencher {
    samples: usize,
    label: String,
}

impl Bencher {
    /// Times `routine`: a few warm-up runs, then `samples` timed runs;
    /// prints the mean.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        for _ in 0..2 {
            black_box(routine());
        }
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(routine());
        }
        let total = start.elapsed();
        println!(
            "{:<40} {:>12.3?}/iter ({} iters)",
            self.label,
            total / self.samples as u32,
            self.samples
        );
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    samples: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the timed-iteration count for subsequent benchmarks.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Runs one benchmark over a borrowed input.
    // Upstream criterion takes the id by value; the stub must match.
    #[allow(clippy::needless_pass_by_value)]
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            samples: self.samples,
            label: format!("{}/{}", self.name, id.name),
        };
        routine(&mut bencher, input);
        self
    }

    /// Runs one benchmark with no explicit input.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: self.samples,
            label: format!("{}/{}", self.name, name.into()),
        };
        routine(&mut bencher);
        self
    }

    /// Ends the group.
    pub fn finish(self) {
        let _ = self.criterion;
    }
}

/// The top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: 10,
            label: name.into(),
        };
        routine(&mut bencher);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            samples: 10,
        }
    }
}

/// Declares a function that runs the listed benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_api_composes() {
        let mut c = Criterion::default();
        let mut runs = 0usize;
        {
            let mut group = c.benchmark_group("g");
            group.sample_size(3);
            group.bench_with_input(BenchmarkId::new("f", 1), &21u32, |b, &x| {
                b.iter(|| x * 2);
                runs += 1;
            });
            group.bench_with_input(BenchmarkId::from_parameter("p"), &(), |b, ()| {
                b.iter(|| 1 + 1);
                runs += 1;
            });
            group.finish();
        }
        c.bench_function("lone", |b| {
            b.iter(|| black_box(3) + 4);
            runs += 1;
        });
        assert_eq!(runs, 3);
    }
}
