//! Compares all three detection methods on one benchmark — a single row
//! of the paper's Table 1, with per-round detail.
//!
//! ```text
//! cargo run --release --example compare_methods [benchmark]
//! ```
//!
//! `benchmark` defaults to `sha`; any name from
//! [`gpa_minicc::programs::BENCHMARKS`] works.

use gpa::{Method, Optimizer};
use gpa_emu::Machine;
use gpa_minicc::{compile_benchmark, Options};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "sha".to_owned());
    let image = compile_benchmark(&name, &Options::default())?;
    let baseline = Machine::new(&image).run(600_000_000)?;
    let program = gpa_cfg::decode_image(&image)?;
    println!(
        "{name}: {} instructions before procedural abstraction",
        program.instruction_count()
    );

    for method in [Method::Sfx, Method::DgSpan, Method::Edgar] {
        let mut optimizer = Optimizer::from_image(&image)?;
        let start = std::time::Instant::now();
        let report = optimizer.run(method)?;
        let elapsed = start.elapsed();
        let optimized = optimizer.encode()?;
        let after = Machine::new(&optimized).run(600_000_000)?;
        assert_eq!(
            baseline.output, after.output,
            "{method} must preserve output"
        );
        println!(
            "{method:>7}: saved {:>4} instructions | {:>3} rounds ({} proc, {} xjump) | {:.2}s",
            report.saved_words(),
            report.rounds.len(),
            report.procedure_count(),
            report.cross_jump_count(),
            elapsed.as_secs_f64()
        );
    }
    Ok(())
}
