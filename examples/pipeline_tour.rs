//! A tour of the post-link-time pipeline (the paper's §2.1 phases) over a
//! real benchmark: compile `crc`, lift the binary, inspect interwoven
//! literal pools and basic blocks, build the DFGs, optimize, re-encode,
//! and run both binaries.
//!
//! ```text
//! cargo run --release --example pipeline_tour
//! ```

use gpa::{Method, Optimizer};
use gpa_cfg::{decode_image, encode_program, Item};
use gpa_dfg::{build_all, stats::degree_stats, LabelMode};
use gpa_emu::Machine;
use gpa_minicc::{compile_benchmark, Options};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Phase 0: "the statically linked program" — our compiler stands in
    // for gcc -Os + dietlibc.
    let image = compile_benchmark("crc", &Options::default())?;
    println!(
        "linked image: {} code words, {} data bytes, {} symbols",
        image.code_len(),
        image.data_bytes().len(),
        image.symbols().len()
    );

    // Phases 1-5: decompile, split into functions, labels, basic blocks,
    // interwoven-data detection.
    let program = decode_image(&image)?;
    let pool_words = image.code_len() - program.instruction_count();
    println!(
        "lifted: {} functions, {} instructions, {} literal-pool words interwoven in code",
        program.functions.len(),
        program.instruction_count(),
        pool_words
    );
    let regions = program.regions();
    println!("basic-block bodies (mining regions): {}", regions.len());
    let lit_loads = regions
        .iter()
        .flat_map(|r| r.items.iter())
        .filter(|i| matches!(i, Item::LitLoad { .. }))
        .count();
    println!("pc-relative literal loads abstracted: {lit_loads}");

    // Phase 6: data-flow graphs.
    let dfgs = build_all(&program, LabelMode::Exact);
    let stats = degree_stats(&dfgs);
    println!(
        "DFGs: {} nodes, {} with (in v out) degree > 1 ({:.0}% — reordering freedom)",
        stats.total(),
        stats.high_degree,
        100.0 * stats.high_degree as f64 / stats.total().max(1) as f64
    );

    // Phases 7-8: mine, extract, iterate.
    let mut optimizer = Optimizer::from_program(program);
    let report = optimizer.run(Method::Edgar)?;
    println!(
        "edgar: saved {} instructions in {} rounds ({} procedures, {} cross-jumps)",
        report.saved_words(),
        report.rounds.len(),
        report.procedure_count(),
        report.cross_jump_count()
    );

    // Re-encode and verify.
    let optimized = encode_program(optimizer.program())?;
    let before = Machine::new(&image).run(600_000_000)?;
    let after = Machine::new(&optimized).run(600_000_000)?;
    assert_eq!(before.output, after.output);
    println!(
        "verified: {} -> {} code words, output identical ({} bytes)",
        image.code_len(),
        optimized.code_len(),
        after.output.len()
    );
    Ok(())
}
