//! Quickstart: compile a MiniC program, shrink it with graph-based
//! procedural abstraction, and prove the optimized binary still behaves
//! identically.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use gpa::{Method, Optimizer};
use gpa_emu::Machine;
use gpa_minicc::{compile, Options};

const PROGRAM: &str = "
    int hash(int *p, int x) { int v = p[0] * 31 + x; p[1] = v * v + 7; return v; }
    int h2(int *p, int x)   { int v = p[0] * 31 + x; p[1] = v * v + 7; return v + 1; }
    int h3(int *p, int x)   { int v = p[0] * 31 + x; p[1] = v * v + 7; return v + 2; }
    int buf[4];
    int main() {
        buf[0] = 5;
        putint(hash(buf, 1) + h2(buf, 2) + h3(buf, 3) + buf[1]);
        return 0;
    }";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Compile and statically link against minilibc.
    let image = compile(PROGRAM, &Options::default())?;
    println!("compiled: {} code words", image.code_len());

    // 2. Run the baseline.
    let before = Machine::new(&image).run(10_000_000)?;
    println!("baseline output: {}", before.output_string());

    // 3. Optimize with Edgar (embedding-based graph mining + MIS).
    let mut optimizer = Optimizer::from_image(&image)?;
    let report = optimizer.run(Method::Edgar)?;
    println!(
        "edgar: {} rounds, {} instructions saved ({} -> {})",
        report.rounds.len(),
        report.saved_words(),
        report.initial_words,
        report.final_words,
    );
    for round in &report.rounds {
        println!(
            "  {:?}: {} words x {} sites, saved {}",
            round.kind, round.body_words, round.occurrences, round.saved
        );
    }

    // 4. Re-encode and verify semantics in the emulator.
    let optimized = optimizer.encode()?;
    let after = Machine::new(&optimized).run(10_000_000)?;
    assert_eq!(before.output, after.output);
    assert_eq!(before.exit_code, after.exit_code);
    println!("verified: optimized binary produces identical output");
    Ok(())
}
