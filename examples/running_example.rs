//! The paper's running example (Figs. 1–7): the seven-instruction ARM
//! basic block whose reordered duplicates a suffix trie cannot see but
//! graph mining can.
//!
//! ```text
//! cargo run --example running_example
//! ```

use gpa_arm::parse::parse_listing;
use gpa_cfg::Item;
use gpa_dfg::{build_dfg_from_items, LabelMode};
use gpa_mining::graph::InputGraph;
use gpa_mining::miner::{mine, Config, Support};
use gpa_sfx::repeated_factors;

/// Fig. 1 of the paper.
const BLOCK: &str = "ldr r3, [r1]!
                     sub r2, r2, r3
                     add r4, r2, #4
                     ldr r3, [r1]!
                     sub r2, r2, r3
                     ldr r3, [r1]!
                     add r4, r2, #4";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let items: Vec<Item> = parse_listing(BLOCK)?.into_iter().map(Item::Insn).collect();
    println!("Fig. 1 — the basic block:");
    for item in &items {
        println!("  {}", item.mining_label());
    }

    // Fig. 2: the data-flow graph.
    let dfg = build_dfg_from_items("example", 0, &items, LabelMode::Exact);
    println!("\nFig. 2 — its data-flow graph (Graphviz):");
    print!("{}", dfg.to_dot());

    // What the suffix trie sees (Fig. 3): only the 2-instruction sequence.
    let mut interner = gpa_mining::graph::LabelInterner::new();
    let seq: Vec<u32> = items
        .iter()
        .map(|i| interner.intern(&i.mining_label()))
        .collect();
    let sfx = repeated_factors(&[seq], 2);
    let longest_sfx = sfx.iter().map(|c| c.len).max().unwrap_or(0);
    println!("\nFig. 3 — longest repeated *sequence* (suffix trie): {longest_sfx} instructions");

    // What the graph miner sees (Figs. 4/5): three-instruction fragments.
    let (graphs, interner) = InputGraph::from_dfgs(std::slice::from_ref(&dfg));
    let found = mine(
        &graphs,
        &Config {
            min_support: 2,
            support: Support::Embeddings,
            max_nodes: 8,
            ..Config::default()
        },
    );
    let best = found
        .iter()
        .filter(|f| f.support >= 2)
        .max_by_key(|f| f.pattern.node_count())
        .expect("the running example contains frequent fragments");
    println!(
        "\nFigs. 4/5 — largest frequent *graph* fragment: {} instructions, {} disjoint occurrences:",
        best.pattern.node_count(),
        best.support
    );
    for i in 0..best.pattern.node_count() {
        println!("  {}", interner.name(best.pattern.node_label(i)));
    }

    // Fig. 7: its canonical DFS code.
    println!("\nFig. 7 — canonical DFS code (from, to, from-label, dir, to-label):");
    for t in best.pattern.tuples() {
        println!(
            "  ({}, {}, {:?}, {}, {:?})",
            t.from,
            t.to,
            interner.name(t.from_label),
            if t.outgoing { "out" } else { "in" },
            interner.name(t.to_label),
        );
    }
    // Fig. 6: the first levels of the search lattice.
    println!("\nFig. 6 — search lattice (first levels):");
    print!(
        "{}",
        gpa_mining::lattice::render_lattice(
            &graphs,
            &interner,
            &gpa_mining::lattice::LatticeOptions::default()
        )
    );

    assert!(best.pattern.node_count() > longest_sfx);
    println!(
        "\nGraph-based PA found a fragment {} instructions longer than the best sequence.",
        best.pattern.node_count() - longest_sfx
    );
    Ok(())
}
