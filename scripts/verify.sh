#!/usr/bin/env bash
# Full verification gate: build, tests, and the promoted clippy lints.
# The container is offline; keep cargo from touching the network.
set -euo pipefail
cd "$(dirname "$0")/.."
export CARGO_NET_OFFLINE=true

cargo build --release --workspace
cargo test -q --workspace
cargo clippy --workspace --all-targets -- -D warnings

echo "verify: all gates green"
