#!/usr/bin/env bash
# Full verification gate: formatting, build, tests, the promoted clippy
# lints, and a cold-vs-warm `gpa batch` smoke over a tiny corpus.
# The container is offline; keep cargo from touching the network.
set -euo pipefail
cd "$(dirname "$0")/.."
export CARGO_NET_OFFLINE=true

cargo fmt --all --check
cargo build --release --workspace
cargo test -q --workspace
cargo clippy --workspace --all-targets -- -D warnings

# Criterion smoke: the bitset hot-path benches (collision graph + exact
# MIS, mining with the canonicality cache) run once in --test mode, so
# the kernels stay exercised without a full measurement run.
cargo bench -q -p gpa-bench --bench mis -- --test
cargo bench -q -p gpa-bench --bench mining -- --test

# Batch-pipeline smoke: two images, cold run then warm run against the
# same cache dir. The warm run must answer from the cache, and the
# deterministic report sections must agree byte-for-byte.
GPA=target/release/gpa
WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT
"$GPA" build-bench crc -o "$WORK/crc.img" >/dev/null
"$GPA" build-bench sha -o "$WORK/sha.img" >/dev/null
"$GPA" batch "$WORK/crc.img" "$WORK/sha.img" --jobs 2 \
    --cache-dir "$WORK/cache" --report "$WORK/cold.json" 2>"$WORK/cold.log"
"$GPA" batch "$WORK/crc.img" "$WORK/sha.img" --jobs 2 \
    --cache-dir "$WORK/cache" --report "$WORK/warm.json" 2>"$WORK/warm.log"

extract_metric() { # file key -> first integer after "key":
    sed -n "s/.*\"$2\":\([0-9][0-9]*\).*/\1/p" "$1" | head -n1
}
cold_wall_ns=$(extract_metric "$WORK/cold.json" wall_ns)
cold_hits=$(sed -n 's/.*"report_cache":{"hits":\([0-9][0-9]*\).*/\1/p' "$WORK/cold.json")
warm_hits=$(sed -n 's/.*"report_cache":{"hits":\([0-9][0-9]*\).*/\1/p' "$WORK/warm.json")
if [ "${warm_hits:-0}" -lt 1 ]; then
    echo "verify: warm batch run did not hit the artifact cache" >&2
    exit 1
fi
# Deterministic sections (everything before the metrics object) agree.
cold_det=$(sed 's/,"metrics":.*//' "$WORK/cold.json")
warm_det=$(sed 's/,"metrics":.*//' "$WORK/warm.json")
if [ "$cold_det" != "$warm_det" ]; then
    echo "verify: cold and warm batch reports disagree" >&2
    exit 1
fi
warm_wall_json_ns=$(extract_metric "$WORK/warm.json" wall_ns)
warm_misses=$(sed -n 's/.*"report_cache":{"hits":[0-9]*,"misses":\([0-9][0-9]*\).*/\1/p' "$WORK/warm.json")
warm_rate_pct=$(( 100 * warm_hits / (warm_hits + ${warm_misses:-0}) ))
printf '{"bench":"pipeline_batch_smoke","images":2,"cold_wall_ns":%s,"warm_wall_ns":%s,"cold_report_cache_hits":%s,"warm_report_cache_hits":%s,"warm_hit_rate_pct":%s}\n' \
    "${cold_wall_ns:-0}" "${warm_wall_json_ns:-0}" "${cold_hits:-0}" "${warm_hits:-0}" "$warm_rate_pct" \
    > BENCH_pipeline.json
echo "verify: batch smoke OK ($(cat BENCH_pipeline.json))"

# Trace smoke: one traced kernel. The stream must pass the structural
# validator (every line parses, counters match their event-line counts,
# the miner's visit identity holds), and the deterministic report line
# plus the output image must be byte-identical with tracing on and off.
# (capture full stdout, then compare only the report line: the second
# line names the per-run output path, and `| head` would close the pipe
# under gpa's feet)
"$GPA" optimize "$WORK/crc.img" -o "$WORK/crc_plain.img" --validate off \
    > "$WORK/opt_plain_full.txt"
"$GPA" optimize "$WORK/crc.img" -o "$WORK/crc_traced.img" --validate off \
    --trace "$WORK/crc.jsonl" > "$WORK/opt_traced_full.txt"
head -n1 "$WORK/opt_plain_full.txt" > "$WORK/opt_plain.txt"
head -n1 "$WORK/opt_traced_full.txt" > "$WORK/opt_traced.txt"
"$GPA" trace-check "$WORK/crc.jsonl"
if ! cmp -s "$WORK/opt_plain.txt" "$WORK/opt_traced.txt"; then
    echo "verify: tracing changed the optimize report" >&2
    exit 1
fi
if ! cmp -s "$WORK/crc_plain.img" "$WORK/crc_traced.img"; then
    echo "verify: tracing changed the optimized image" >&2
    exit 1
fi
# Traced batch run: per-image streams check out, and the deterministic
# report section matches the untraced runs above.
"$GPA" batch "$WORK/crc.img" "$WORK/sha.img" --jobs 2 \
    --trace-dir "$WORK/traces" --report "$WORK/traced.json" 2>/dev/null
"$GPA" trace-check "$WORK/traces"/*.jsonl
traced_det=$(sed 's/,"metrics":.*//' "$WORK/traced.json")
if [ "$cold_det" != "$traced_det" ]; then
    echo "verify: traced batch report disagrees with the untraced run" >&2
    exit 1
fi
echo "verify: trace smoke OK"

# Front-end thread-count smoke: `--jobs` fans the decode + per-block
# DFG builds out over the front-end pool, which must never leak into
# the output — the report line and the optimized image are byte-for-byte
# identical at every thread count.
"$GPA" optimize "$WORK/crc.img" -o "$WORK/crc_j1.img" --validate off \
    --jobs 1 > "$WORK/opt_j1_full.txt"
head -n1 "$WORK/opt_j1_full.txt" > "$WORK/opt_j1.txt"
for j in 2 8; do
    "$GPA" optimize "$WORK/crc.img" -o "$WORK/crc_j$j.img" --validate off \
        --jobs "$j" > "$WORK/opt_j${j}_full.txt"
    head -n1 "$WORK/opt_j${j}_full.txt" > "$WORK/opt_j$j.txt"
    if ! cmp -s "$WORK/opt_j1.txt" "$WORK/opt_j$j.txt"; then
        echo "verify: --jobs $j changed the optimize report" >&2
        exit 1
    fi
    if ! cmp -s "$WORK/crc_j1.img" "$WORK/crc_j$j.img"; then
        echo "verify: --jobs $j changed the optimized image" >&2
        exit 1
    fi
done
echo "verify: front-end thread-count smoke OK (jobs 1/2/8 byte-identical)"

# Lint gate: every bundled kernel must pass the V010–V014 stack lints
# with zero errors (warnings are allowed — `lint` exits non-zero only
# on error-severity findings or an undecodable image).
for k in bitcnts crc dijkstra patricia qsort rijndael search sha; do
    "$GPA" build-bench "$k" -o "$WORK/lint_$k.img" >/dev/null
    if ! "$GPA" lint "$WORK/lint_$k.img" >/dev/null 2>"$WORK/lint_$k.log"; then
        echo "verify: lint errors on $k:" >&2
        cat "$WORK/lint_$k.log" >&2
        exit 1
    fi
done
echo "verify: lint gate OK (8 kernels clean)"

# The MEM-edge relaxation property tests: every relaxed pair must be
# re-derivable by the validator and every relaxed-DFG linearization
# must execute identically to program order on the emulator.
cargo test -q -p gpa --test proptest_absint_relax

# Perf gate: run the benchmark harness over the full kernel corpus —
# with the alias-driven MEM-edge relaxation on, so its wins are part of
# the tracked numbers — and refresh BENCH_gpa.json at the repo root.
# When a committed baseline exists, gate the fresh run against it first:
# a compression regression (exit 2) fails verification — saved words
# must never decrease — while latency drift beyond the tolerance
# (exit 3) only warns — stage timings are noisy across machines, the
# deterministic compression metrics are not.
if [ -f BENCH_gpa.json ]; then
    cp BENCH_gpa.json "$WORK/bench_baseline.json"
fi
"$GPA" perf --jobs 2 --alias stack --profile -o BENCH_gpa.json > "$WORK/perf.md" 2>"$WORK/perf.log"
# The span profile must show the parallel front-end (decode + per-block
# DFG build) as a distinct span.
if ! grep -Eq ' front$' "$WORK/perf.md"; then
    echo "verify: perf --profile shows no front-end span" >&2
    exit 1
fi
if [ -f "$WORK/bench_baseline.json" ]; then
    perf_status=0
    "$GPA" perf --compare BENCH_gpa.json \
        --baseline "$WORK/bench_baseline.json" --tolerance-pct 50 \
        2>"$WORK/perf_gate.log" || perf_status=$?
    case $perf_status in
        0) echo "verify: perf gate OK (no regression vs committed baseline)" ;;
        3) echo "verify: perf latency drifted beyond tolerance (soft)" >&2
           cat "$WORK/perf_gate.log" >&2 ;;
        *) echo "verify: perf compression regression vs committed baseline" >&2
           cat "$WORK/perf_gate.log" >&2
           exit 1 ;;
    esac
else
    echo "verify: no committed baseline, wrote a fresh BENCH_gpa.json"
fi

# Serve smoke: a resident daemon on an ephemeral loopback port, driven
# by the gpa-bench load generator. Gates, in order: a `gpa submit`
# response embeds the byte-identical report of a one-shot
# `gpa optimize --report-json`; a >=500-request mixed hot/cold soak plus
# a burst completes with zero protocol errors, warm cache hits, and
# shed (`overloaded`) responses under the burst; the daemon drains
# cleanly on a Shutdown frame and exits 0; its gpa-trace/1 stream passes
# trace-check (including the serve.accepted accounting identity, exit
# 5 on breakage); and the deterministic section of BENCH_serve.json
# (per-image saved words) matches the committed baseline.
LOADGEN=target/release/gpa-bench
"$GPA" serve --listen 127.0.0.1:0 --workers 2 --queue-depth 4 \
    --trace "$WORK/serve.jsonl" > "$WORK/serve.out" 2>"$WORK/serve.log" &
SERVE_PID=$!
serve_addr=
for _ in $(seq 1 100); do
    serve_addr=$(sed -n 's/^gpa-serve listening on //p' "$WORK/serve.out")
    [ -n "$serve_addr" ] && break
    sleep 0.1
done
if [ -z "$serve_addr" ]; then
    echo "verify: gpa serve never reported its address" >&2
    kill "$SERVE_PID" 2>/dev/null || true
    exit 1
fi
# One-shot equivalence: the served report is the optimizer's, bytewise.
"$GPA" optimize "$WORK/crc.img" -o "$WORK/crc_serve_ref.img" --validate off \
    --report-json "$WORK/crc_report_oneshot.json" >/dev/null
"$GPA" submit "$WORK/crc.img" --addr "$serve_addr" \
    --knobs '{"validate":"off"}' --report-only > "$WORK/crc_report_served.json"
if ! cmp -s "$WORK/crc_report_oneshot.json" "$WORK/crc_report_served.json"; then
    echo "verify: served report differs from one-shot gpa optimize" >&2
    kill "$SERVE_PID" 2>/dev/null || true
    exit 1
fi
# Mixed hot/cold soak + shed-provoking burst, then a Shutdown frame.
serve_baseline_args=()
if [ -f BENCH_serve.json ]; then
    cp BENCH_serve.json "$WORK/serve_baseline.json"
    serve_baseline_args=(--baseline "$WORK/serve_baseline.json")
fi
"$LOADGEN" --addr "$serve_addr" --requests 500 --clients 4 --burst 12 \
    --out BENCH_serve.json --shutdown \
    ${serve_baseline_args[@]+"${serve_baseline_args[@]}"} \
    > "$WORK/loadgen.out"
if ! wait "$SERVE_PID"; then
    echo "verify: gpa serve exited non-zero after drain" >&2
    exit 1
fi
"$GPA" trace-check "$WORK/serve.jsonl"
soak_cached=$(extract_metric BENCH_serve.json cached)
soak_shed=$(extract_metric BENCH_serve.json overloaded)
soak_proto=$(extract_metric BENCH_serve.json protocol_errors)
if [ "${soak_proto:-1}" -ne 0 ]; then
    echo "verify: serve soak saw protocol errors" >&2
    exit 1
fi
if [ "${soak_cached:-0}" -lt 1 ]; then
    echo "verify: serve soak never hit the warm cache" >&2
    exit 1
fi
if [ "${soak_shed:-0}" -lt 1 ]; then
    echo "verify: serve burst produced no overloaded responses" >&2
    exit 1
fi
echo "verify: serve smoke OK ($(sed 's/.*"measured"://;s/}}$/}/' BENCH_serve.json))"

echo "verify: all gates green"
